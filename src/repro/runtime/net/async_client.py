"""The asyncio TCP backend: one event loop driving the whole fleet.

:class:`AsyncTcpCluster` is the event-loop twin of
:class:`~repro.runtime.net.client.TcpCluster`: same wire protocol,
same worker daemons, same fleet description — but where the sync
cluster multiplexes worker sockets with a selector pumped from the
master's calling thread, this cluster runs **one asyncio event loop in
one dedicated thread** and parks a lightweight reader coroutine on
every connection. All socket I/O, liveness probing and round/deadline
bookkeeping happen on that loop; the total thread count is O(1) in the
worker count, which is what lets a single master drive 64+ workers
without a thread explosion.

Demultiplexing and the sync facade
----------------------------------
Every worker's reader coroutine feeds one demultiplexer: ``result``
frames are routed *by round id* to the loop-side state of the owning
round, which forwards each terminal per-worker event (a value, or a
never-arrived marker) into a thread-safe queue. The public
:class:`AsyncTcpRoundHandle` is a plain synchronous
:class:`~repro.runtime.backend.RoundHandle` that drains that queue —
so masters, sessions, the scheduler and the whole test matrix run
unchanged on top of the loop. The few sync entry points that must
touch sockets (``dispatch_round``, ``distribute``, ``drop_workers``,
``close``) hop onto the loop with ``run_coroutine_threadsafe`` and
wait at the boundary.

Liveness and deadlines
----------------------
Heartbeats are an always-on loop task (the sync cluster only probes
while a collect is pumping); a probe unanswered past
``heartbeat_timeout`` marks the worker dead, exactly like a socket
error/EOF, and every in-flight round observes a straggler that never
arrives. Per-round collect deadlines are ``loop.call_later`` timers:
expiry records the still-outstanding workers as never-arrived for that
round only. Both knobs come from one
:class:`~repro.runtime.net.tunables.NetTunables` surface shared with
the sync backend.

Fork safety: the loopback fleet is spawned *before* the loop thread
starts (workers retry-dial), so fork-mode children never inherit a
thread's locks.

Elastic membership mirrors the sync cluster: the asyncio server keeps
accepting after initial registration, version-checks each late
``hello`` (:func:`~repro.runtime.net.wire.check_hello`), and parks the
handshaken connection as a pending join — no reader task yet, so a
parked daemon cannot inject frames. ``admit_workers()`` (refused while
rounds are in flight) moves pending joins into the roster on the loop
thread; ``drop_workers`` is reversible the same way, and
``membership()`` / ``take_membership_events()`` report the state.
"""

from __future__ import annotations

import asyncio
import queue
import socket
import threading
import time
from typing import Iterator, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.backend import (
    Arrival,
    MembershipView,
    RoundHandle,
    RoundJob,
    RoundResult,
    WallClockBackend,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.net.fleet import LocalFleet, spawn_local_workers
from repro.runtime.net.tunables import NetTunables
from repro.runtime.net.wire import (
    WireCounters,
    WireError,
    behavior_to_dict,
    check_hello,
    encode_frame,
    read_frame_async,
)
from repro.runtime.worker import SimWorker

__all__ = ["AsyncTcpCluster", "AsyncTcpRoundHandle"]

_DEFAULTS = NetTunables()

#: socket/stream failures that mean "this worker is gone"
_CONN_ERRORS = (
    WireError,
    OSError,
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
)


class _LoopRound:
    """Loop-side state of one in-flight round: the outstanding set and
    the thread-safe event queue feeding the sync handle."""

    __slots__ = ("rid", "outstanding", "events", "timer")

    def __init__(self, rid: int, events: "queue.SimpleQueue") -> None:
        self.rid = rid
        self.outstanding: set[int] = set()
        self.events = events
        self.timer: asyncio.TimerHandle | None = None


class AsyncTcpRoundHandle(RoundHandle):
    """One in-flight round, consumed synchronously.

    The event loop pushes one terminal event per participant — a
    delivered value or a never-arrived marker — into this handle's
    queue; iterating drains it and yields finite arrivals in true
    arrival order, with the same semantics (cancellation, all-failed
    error, missing accounting) as the sync ``TcpRoundHandle``.
    """

    def __init__(
        self, cluster: "AsyncTcpCluster", rid: int, participants: list[int]
    ):
        self._cluster = cluster
        self._rid = rid
        self._participants = participants
        #: (wid, value|None, compute_time, err|None, spans|None,
        #: digest|None) events from the loop
        self._events: queue.SimpleQueue = queue.SimpleQueue()
        self._received: dict[int, Arrival] = {}
        self._inbox: list[Arrival] = []
        #: worker_id -> error reported by its computation (repr string)
        self.worker_errors: dict[int, str] = {}
        #: worker_id -> daemon-side sub-spans (traced rounds only)
        self.worker_spans: dict[int, list] = {}
        #: worker_id -> daemon-countersigned result digest from
        #: attested result frames (audit armed)
        self.worker_digests: dict[int, str] = {}
        self._outstanding: set[int] = set(participants)
        self._cancelled = False
        self.t_start = cluster.now
        self.broadcast_time = 0.0

    # ------------------------------------------------------------------
    def _pump(self, block: bool) -> bool:
        """Consume one event from the loop; returns False when none was
        available (non-blocking) or the wait timed out."""
        try:
            if block:
                ev = self._events.get(timeout=0.25)
            else:
                ev = self._events.get_nowait()
        except queue.Empty:
            if block and self._cluster._closed:
                # the loop is gone: nothing will deliver the rest
                for wid in list(self._outstanding):
                    self._outstanding.discard(wid)
                    self._received[wid] = self._missing(wid)
            return False
        wid, value, compute_time, err, spans, digest = ev
        if wid not in self._outstanding:
            return True
        self._outstanding.discard(wid)
        if err is not None:
            self.worker_errors[wid] = err
        if spans:
            self.worker_spans[wid] = spans
        if digest is not None:
            self.worker_digests[wid] = digest
        if value is None:
            self._received[wid] = self._missing(wid)
            return True
        a = Arrival(
            worker_id=wid,
            value=value,
            t_arrival=max(self._cluster.now, self.t_start + self.broadcast_time),
            compute_time=compute_time,
            comm_time=0.0,
            truly_byzantine=self._cluster.workers[wid].is_byzantine,
        )
        self._received[wid] = a
        self._inbox.append(a)
        return True

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Arrival]:
        any_finite = False
        while not self._cancelled:
            if self._inbox:
                any_finite = True
                yield self._inbox.pop(0)
                continue
            if not self._outstanding:
                break
            self._pump(block=True)
        if (
            not self._cancelled
            and not any_finite
            and not self._inbox
            and len(self.worker_errors) == len(self._participants)
        ):
            # every worker failed: a malformed job, not node failures
            self._cluster._drop_round(self._rid)
            wid, err = next(iter(self.worker_errors.items()))
            raise RuntimeError(
                f"all {len(self._participants)} workers failed this round "
                f"(first error, worker {wid}: {err})"
            )

    def _missing(self, wid: int) -> Arrival:
        return self._cluster._missing_arrival(
            wid, self._cluster.workers[wid].is_byzantine
        )

    def cancel(self) -> None:
        """Stop waiting; workers are told to skip the round if it is
        still queued on their side. Idempotent, safe after ``result``."""
        if self._cancelled:
            return
        self._cancelled = True
        self._cluster._cancel_round(self._rid)

    def result(self) -> RoundResult:
        while self._outstanding and self._pump(block=False):
            pass
        for wid in self._outstanding:
            self._received.setdefault(wid, self._missing(wid))
        self._cluster._drop_round(self._rid)
        ordered = sorted(self._received.values(), key=lambda a: a.t_arrival)
        return RoundResult(
            t_start=self.t_start,
            broadcast_time=self.broadcast_time,
            arrivals=tuple(ordered),
        )


class AsyncTcpCluster(WallClockBackend):
    """Socket-fleet backend on one event loop (master side).

    Constructor parameters mirror :class:`TcpCluster` — same fleet
    description, same listen/spawn knobs, same
    :class:`~repro.runtime.net.tunables.NetTunables` liveness/deadline
    surface (``heartbeat_interval``, ``heartbeat_timeout``,
    ``io_timeout``, ``round_timeout``) — so the two are
    drop-in-interchangeable through the ``"tcp"`` / ``"async_tcp"``
    registry names and must decode byte-identically.
    """

    def __init__(
        self,
        field: PrimeField,
        workers: Sequence[SimWorker],
        rng: np.random.Generator | None = None,
        straggle_scale: float = 0.05,
        cost_model: CostModel | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 30.0,
        heartbeat_interval: float = _DEFAULTS.heartbeat_interval,
        heartbeat_timeout: float = _DEFAULTS.heartbeat_timeout,
        io_timeout: float | None = _DEFAULTS.io_timeout,
        round_timeout: float | None = _DEFAULTS.round_timeout,
        spawn_workers: bool = True,
        spawn_mode: str = "fork",
    ):
        ids = [w.worker_id for w in workers]
        if sorted(ids) != list(range(len(workers))):
            raise ValueError("worker ids must be exactly 0..n-1")
        tunables = NetTunables(
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            io_timeout=io_timeout,
            round_timeout=round_timeout,
        )
        self.field = field
        self.workers = list(sorted(workers, key=lambda w: w.worker_id))
        self.rng = rng or np.random.default_rng(0)
        self.straggle_scale = straggle_scale
        self.cost_model = cost_model or CostModel()
        self.host = host
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = tunables.heartbeat_interval
        self.heartbeat_timeout = tunables.heartbeat_timeout
        self.io_timeout = tunables.effective_io_timeout
        self.round_timeout = tunables.round_timeout
        self._init_wall_clock()

        self._rid = 0
        self._closed = False
        self._fleet: LocalFleet | None = None
        # ---- loop-side state (touched only on the event loop) ----
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: dict[int, asyncio.Task] = {}
        self._rounds: dict[int, _LoopRound] = {}
        self._dead: set[int] = set()
        self._hb_seq = 0
        #: wid -> loop-clock time of the oldest unanswered heartbeat
        self._hb_pending: dict[int, float | None] = {}
        #: wid -> (seq, monotonic send time) of the last heartbeat,
        #: matched against acks for the per-worker RTT gauge
        self._hb_sent: dict[int, tuple[int, float]] = {}
        self.wire = WireCounters()
        #: wid -> handshaken (reader, writer) parked until admit_workers()
        self._pending_joins: dict[
            int, tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}
        self._hb_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._registered = asyncio.Event()  # bound to the loop at start

        self._listener = socket.create_server((host, port), backlog=len(self.workers))
        self.port = self._listener.getsockname()[1]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        try:
            if spawn_workers:
                # fork the fleet BEFORE the loop thread exists: a child
                # forked while another thread holds an allocator/libc
                # lock would inherit it locked forever
                self._fleet = spawn_local_workers(
                    "127.0.0.1" if host in ("0.0.0.0", "") else host,
                    self.port,
                    [w.worker_id for w in self.workers],
                    mode=spawn_mode,
                    connect_timeout=connect_timeout,
                )
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._loop.run_forever, name="async-tcp-loop", daemon=True
            )
            self._thread.start()
            self._call(self._start(), timeout=connect_timeout + 15.0)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # the sync/async boundary
    # ------------------------------------------------------------------
    def _call(self, coro, timeout: float | None = None):
        """Run a coroutine on the loop thread and wait for its result."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def _post(self, coro) -> None:
        """Fire-and-forget a coroutine onto the loop (cancel paths)."""
        if self._loop is not None and not self._closed:
            try:
                asyncio.run_coroutine_threadsafe(coro, self._loop)
            except RuntimeError:  # pragma: no cover - loop shut down
                coro.close()

    # ------------------------------------------------------------------
    # registration (loop side)
    # ------------------------------------------------------------------
    async def _start(self) -> None:
        self._registered = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, sock=self._listener
        )
        if not self._expected() <= set(self._writers):
            try:
                await asyncio.wait_for(
                    self._registered.wait(), self.connect_timeout
                )
            except asyncio.TimeoutError:
                missing = sorted(self._expected() - set(self._writers))
                raise RuntimeError(
                    f"timed out waiting for workers {missing} to register on "
                    f"{self.host}:{self.port} (connect_timeout="
                    f"{self.connect_timeout}s)"
                ) from None
        self._hb_task = asyncio.get_running_loop().create_task(
            self._heartbeat_loop()
        )

    def _expected(self) -> set[int]:
        return {w.worker_id for w in self.workers}

    def _worker_config(self, wid: int) -> dict:
        """The ``config`` frame for a worker id — the declared fleet
        spec when the id is known, honest full-speed defaults for a
        brand-new joiner beyond the current roster."""
        w = self.workers[wid] if wid < len(self.workers) else SimWorker(wid)
        return {
            "q": self.field.q,
            "straggle_scale": self.straggle_scale,
            "factor": float(getattr(w.profile, "factor", 1.0)),
            "behavior": behavior_to_dict(w.behavior),
            "seed": wid,
        }

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            kind, fields, _ = await asyncio.wait_for(
                read_frame_async(reader, self.wire), self.io_timeout
            )
            if kind != "hello":
                raise WireError(f"expected hello, got {kind!r}")
            wid = check_hello(fields)
            late = self._registered.is_set()
            if not late and (wid not in self._expected() or wid in self._writers):
                raise WireError(f"unexpected or duplicate worker id {wid}")
            config = b"".join(encode_frame("config", self._worker_config(wid)))
            writer.write(config)
            await asyncio.wait_for(writer.drain(), self.io_timeout)
            self.wire.note_out(len(config))
        except (*_CONN_ERRORS, KeyError, ValueError):
            writer.close()
            return
        if late:
            # park as a pending join — no reader task until admitted,
            # so a parked daemon cannot inject frames into the pump
            stale = self._pending_joins.pop(wid, None)
            if stale is not None:  # superseded by this fresher dial
                try:
                    stale[1].close()
                except Exception:  # pragma: no cover - close best-effort
                    pass
            self._pending_joins[wid] = (reader, writer)
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._writers[wid] = writer
        self._hb_pending[wid] = None
        self._reader_tasks[wid] = asyncio.get_running_loop().create_task(
            self._reader_loop(wid, reader)
        )
        if self._expected() <= set(self._writers):
            self._registered.set()

    # ------------------------------------------------------------------
    # the demultiplexer (loop side)
    # ------------------------------------------------------------------
    async def _reader_loop(self, wid: int, reader: asyncio.StreamReader) -> None:
        """One worker's receive coroutine: acks liveness, routes result
        frames to their round by id."""
        try:
            while True:
                kind, fields, arrays = await read_frame_async(reader, self.wire)
                self._hb_pending[wid] = None
                if kind == "result":
                    rid = int(fields["rid"])
                    rnd = self._rounds.get(rid)
                    if rnd is not None and wid in rnd.outstanding:
                        rnd.outstanding.discard(wid)
                        value = arrays[0] if fields.get("ok") and arrays else None
                        rnd.events.put(
                            (
                                wid,
                                value,
                                float(fields.get("compute_time", 0.0)),
                                fields.get("err"),
                                fields.get("spans"),
                                fields.get("digest"),
                            )
                        )
                        if not rnd.outstanding:
                            self._finish_round(rid)
                elif kind == "heartbeat_ack":
                    sent = self._hb_sent.get(wid)
                    if sent is not None and fields.get("seq") == sent[0]:
                        self.wire.hb_rtt[wid] = max(
                            0.0, time.monotonic() - sent[1]
                        )
        except _CONN_ERRORS:
            self._mark_dead(wid)

    def _finish_round(self, rid: int) -> None:
        rnd = self._rounds.pop(rid, None)
        if rnd is not None and rnd.timer is not None:
            rnd.timer.cancel()

    def _expire_round(self, rid: int) -> None:
        """Collect deadline passed: record every straggler still
        outstanding as never-arrived (the workers stay in the pool)."""
        rnd = self._rounds.pop(rid, None)
        if rnd is None:
            return
        for wid in list(rnd.outstanding):
            rnd.events.put((wid, None, 0.0, None, None, None))
        rnd.outstanding.clear()

    def _mark_dead(self, wid: int) -> None:
        """A worker's socket failed or its heartbeats lapsed: record it
        permanently silent; in-flight rounds observe a straggler that
        never arrives, not a hang."""
        if wid in self._dead:
            return
        self._dead.add(wid)
        self._hb_pending[wid] = None
        if wid not in self._dropped:
            self._note_membership("dead", wid)
        task = self._reader_tasks.pop(wid, None)
        if task is not None and task is not asyncio.current_task():
            task.cancel()
        self._close_writer(wid)
        for rid in list(self._rounds):
            rnd = self._rounds[rid]
            if wid in rnd.outstanding:
                rnd.outstanding.discard(wid)
                rnd.events.put((wid, None, 0.0, None, None, None))
                if not rnd.outstanding:
                    self._finish_round(rid)

    def _close_writer(self, wid: int) -> None:
        writer = self._writers.pop(wid, None)
        if writer is None:
            return
        try:
            writer.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass

    # ------------------------------------------------------------------
    # liveness (loop side)
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = loop.time()
            self._hb_seq += 1
            frame = b"".join(encode_frame("heartbeat", {"seq": self._hb_seq}))
            for wid in list(self._writers):
                if wid in self._dead:
                    continue
                writer = self._writers[wid]
                try:
                    writer.write(frame)
                    await asyncio.wait_for(writer.drain(), self.io_timeout)
                except _CONN_ERRORS:
                    self._mark_dead(wid)
                    continue
                self.wire.note_out(len(frame))
                self._hb_sent[wid] = (self._hb_seq, time.monotonic())
                if self._hb_pending.get(wid) is None:
                    self._hb_pending[wid] = now
            for wid, since in list(self._hb_pending.items()):
                if (
                    wid not in self._dead
                    and since is not None
                    and loop.time() - since > self.heartbeat_timeout
                ):
                    self._mark_dead(wid)

    # ------------------------------------------------------------------
    # elastic membership (sync facade over loop-side state)
    # ------------------------------------------------------------------
    def admit_workers(self) -> tuple[int, ...]:
        """Admit every admissible pending join into the roster.

        Must be called between rounds (raises ``RuntimeError`` while
        any round is in flight). Semantics match
        :meth:`TcpCluster.admit_workers`: live duplicates are
        discarded, a next-dense id joins as a new honest worker,
        gapped ids wait."""
        return tuple(self._call(self._admit_on_loop()))

    async def _admit_on_loop(self) -> list[int]:
        if self._rounds:
            raise RuntimeError(
                "cannot admit workers mid-round: drain in-flight rounds first"
            )
        admitted: list[int] = []
        for wid in sorted(self._pending_joins):
            reader, writer = self._pending_joins[wid]
            if wid in self._writers:
                del self._pending_joins[wid]
                try:
                    writer.close()
                except Exception:  # pragma: no cover - close best-effort
                    pass
                continue
            if wid > len(self.workers):
                continue
            del self._pending_joins[wid]
            fresh = wid == len(self.workers)
            if fresh:
                self.workers.append(SimWorker(wid))
            self._dead.discard(wid)
            self._dropped.discard(wid)
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._writers[wid] = writer
            self._hb_pending[wid] = None
            self._reader_tasks[wid] = asyncio.get_running_loop().create_task(
                self._reader_loop(wid, reader)
            )
            self._note_membership("joined" if fresh else "rejoined", wid)
            admitted.append(wid)
        return admitted

    def membership(self) -> MembershipView:
        """Current roster split, snapshotted on the loop thread."""
        return self._call(self._membership_on_loop())

    async def _membership_on_loop(self) -> MembershipView:
        return MembershipView(
            n=len(self.workers),
            live=tuple(sorted(self._writers)),
            dead=tuple(sorted(self._dead - self._dropped)),
            dropped=tuple(sorted(self._dropped)),
            pending=tuple(sorted(self._pending_joins)),
        )

    def restart_worker(self, worker_id: int) -> None:
        """Replace a (self-spawned) worker's process with a fresh
        daemon; it re-dials and is admitted at the next quiesce."""
        if self._fleet is None:
            raise RuntimeError(
                "no self-spawned fleet: restart externally launched daemons "
                "from wherever they were started"
            )
        self._fleet.restart_worker(worker_id)

    def spawn_worker(self, worker_id: int | None = None) -> int:
        """Launch one additional (self-spawned) daemon; defaults to the
        next dense id. Returns the id it will register under."""
        if self._fleet is None:
            raise RuntimeError(
                "no self-spawned fleet: launch externally managed daemons "
                "from wherever the fleet is run"
            )
        wid = len(self.workers) if worker_id is None else int(worker_id)
        self._fleet.spawn_worker(wid)
        return wid

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.workers)

    def worker_pids(self) -> dict[int, int]:
        """PIDs of self-spawned workers (empty for external fleets)."""
        return self._fleet.pids() if self._fleet is not None else {}

    # ------------------------------------------------------------------
    # Backend protocol (sync facade)
    # ------------------------------------------------------------------
    def distribute(self, name: str, shares: np.ndarray, participants=None) -> float:
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        if len(participants) > shares.shape[0]:
            raise ValueError("fewer shares than participants")
        t0 = time.perf_counter()
        items = [
            (wid, encode_frame("store", {"name": name}, (np.asarray(shares[slot]),)))
            for slot, wid in enumerate(participants)
        ]
        self._call(self._send_stores(items))
        return time.perf_counter() - t0

    async def _send_stores(self, items) -> None:
        for wid, parts in items:
            writer = self._writers.get(wid)
            if writer is None or wid in self._dead:
                continue  # permanently silent; shares would be lost
            try:
                nbytes = 0
                for part in parts:
                    writer.write(bytes(part) if isinstance(part, memoryview) else part)
                    nbytes += len(part)
                await asyncio.wait_for(writer.drain(), self.io_timeout)
                self.wire.note_out(nbytes)
            except _CONN_ERRORS:
                self._mark_dead(wid)

    def dispatch_round(
        self, job: RoundJob, participants: Sequence[int] | None = None
    ) -> AsyncTcpRoundHandle:
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        self._rid += 1
        rid = self._rid
        t_b0 = time.perf_counter()
        fields = {
            "rid": rid,
            "op": job.op,
            "payload_key": job.payload_key,
            "rhs_key": job.rhs_key,
        }
        if self.obs is not None:
            # traced rounds ask the daemons for their sub-spans;
            # untraced round frames stay byte-identical
            fields["trace"] = True
            self.obs.on_dispatch("async_tcp", job, len(participants))
        if self.attest:
            # audited rounds ask the daemons to countersign results
            fields["attest"] = True
        arrays = (job.operand,) if job.operand is not None else ()
        parts = encode_frame("round", fields, arrays)  # serialize once
        handle = AsyncTcpRoundHandle(self, rid, participants)
        self._call(self._dispatch_on_loop(rid, parts, participants, handle._events))
        handle.broadcast_time = time.perf_counter() - t_b0
        return handle

    async def _dispatch_on_loop(
        self,
        rid: int,
        parts: list,
        participants: list[int],
        events: "queue.SimpleQueue",
    ) -> None:
        rnd = _LoopRound(rid, events)
        payload = [bytes(p) if isinstance(p, memoryview) else p for p in parts]
        for wid in participants:
            if wid in self._dead or wid not in self._writers:
                events.put((wid, None, 0.0, None, None, None))
            else:
                rnd.outstanding.add(wid)
        self._rounds[rid] = rnd
        nbytes = sum(len(p) for p in payload)
        for wid in list(rnd.outstanding):
            writer = self._writers.get(wid)
            if writer is None:
                continue
            try:
                for part in payload:
                    writer.write(part)
                await asyncio.wait_for(writer.drain(), self.io_timeout)
                self.wire.note_out(nbytes)
            except _CONN_ERRORS:
                self._mark_dead(wid)
        if not rnd.outstanding:
            self._finish_round(rid)
            return
        if self.round_timeout is not None:
            rnd.timer = asyncio.get_running_loop().call_later(
                self.round_timeout, self._expire_round, rid
            )

    # ------------------------------------------------------------------
    # cancellation / cleanup hooks (called from handles, sync side)
    # ------------------------------------------------------------------
    def _cancel_round(self, rid: int) -> None:
        self._post(self._cancel_on_loop(rid))

    async def _cancel_on_loop(self, rid: int) -> None:
        rnd = self._rounds.pop(rid, None)
        if rnd is None:
            return
        if rnd.timer is not None:
            rnd.timer.cancel()
        frame = b"".join(encode_frame("cancel", {"rid": rid}))
        for wid in list(rnd.outstanding):
            writer = self._writers.get(wid)
            if writer is None or wid in self._dead:
                continue
            try:
                writer.write(frame)
                await asyncio.wait_for(writer.drain(), self.io_timeout)
                self.wire.note_out(len(frame))
            except _CONN_ERRORS:
                self._mark_dead(wid)

    def _drop_round(self, rid: int) -> None:
        if self._loop is not None and not self._closed:
            self._loop.call_soon_threadsafe(self._finish_round, rid)

    # ------------------------------------------------------------------
    def drop_workers(self, worker_ids: Sequence[int]) -> None:
        """Disconnect dropped workers for real: ship ``shutdown`` and
        close the socket — the dynamic-coding path releases live
        connections, and a re-connect is a fresh registration."""
        fresh = [int(w) for w in worker_ids if int(w) not in self._dropped]
        super().drop_workers(fresh)
        if fresh:
            self._call(self._drop_on_loop(fresh))
            self._reap_fleet_procs(fresh)

    async def _drop_on_loop(self, worker_ids: list[int]) -> None:
        frame = b"".join(encode_frame("shutdown", {}))
        for wid in worker_ids:
            writer = self._writers.get(wid)
            if writer is not None and wid not in self._dead:
                try:
                    writer.write(frame)
                    await asyncio.wait_for(writer.drain(), self.io_timeout)
                except _CONN_ERRORS:
                    pass
            task = self._reader_tasks.pop(wid, None)
            if task is not None:
                task.cancel()
            self._close_writer(wid)
            for rid in list(self._rounds):
                rnd = self._rounds[rid]
                if wid in rnd.outstanding:
                    rnd.outstanding.discard(wid)
                    rnd.events.put((wid, None, 0.0, None, None, None))
                    if not rnd.outstanding:
                        self._finish_round(rid)

    def _reap_fleet_procs(self, worker_ids: Sequence[int]) -> None:
        if self._fleet is None:
            return
        for wid in worker_ids:
            proc = self._fleet.procs.get(wid)
            if proc is None:
                continue
            try:
                if self._fleet.mode == "fork":
                    proc.join(0.5)
                    if proc.is_alive():
                        proc.terminate()
                else:
                    proc.wait(0.5)
            except Exception:  # pragma: no cover - reaping best-effort
                pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        if self._loop is not None and self._thread is not None:
            try:
                self._call(self._shutdown_on_loop(), timeout=10.0)
            except Exception:  # pragma: no cover - wind-down best-effort
                pass
            self._closed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10.0)
            if not self._loop.is_running():
                self._loop.close()
        else:
            self._closed = True
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._fleet is not None:
            self._fleet.terminate()

    async def _shutdown_on_loop(self) -> None:
        """Resolve every in-flight round, shut the fleet down cleanly,
        stop accepting — run on the loop right before it is stopped."""
        if self._hb_task is not None:
            self._hb_task.cancel()
        for rid in list(self._rounds):
            rnd = self._rounds.pop(rid)
            if rnd.timer is not None:
                rnd.timer.cancel()
            for wid in list(rnd.outstanding):
                rnd.events.put((wid, None, 0.0, None, None, None))
            rnd.outstanding.clear()
        frame = b"".join(encode_frame("shutdown", {}))
        for wid in list(self._writers):
            if wid not in self._dead and wid not in self._dropped:
                writer = self._writers[wid]
                try:
                    writer.write(frame)
                    await asyncio.wait_for(writer.drain(), 1.0)
                except _CONN_ERRORS:  # pragma: no cover - peer already gone
                    pass
        for task in list(self._reader_tasks.values()):
            task.cancel()
        self._reader_tasks.clear()
        for wid in list(self._writers):
            self._close_writer(wid)
        for _, writer in self._pending_joins.values():
            try:
                writer.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
        self._pending_joins.clear()
        if self._server is not None:
            self._server.close()
