"""The remote worker daemon of the TCP backend.

One :class:`WorkerServer` is one worker node: it dials the master's
listening socket, registers with a ``hello`` frame, receives its
``config`` (field modulus, straggler factor, behaviour, straggle
scale — the same fleet description the in-process backends apply
directly), then serves the store/round protocol until it is shut down
or the connection drops.

The daemon runs **one asyncio event loop** (it serves either the sync
``TcpCluster`` or the ``AsyncTcpCluster`` — the wire protocol is
identical) with two long-lived tasks splitting the work so it never
deadlocks and never goes dark:

* the **receive task** drains the socket continuously — heartbeats are
  acknowledged inline (so a worker grinding through a long compute, or
  sleeping out an injected straggle, still proves liveness), cancels
  are noted, and store/round messages are queued for the compute task.
  Draining eagerly also means the master's share distribution can
  never block on a worker that is busy computing.
* the **compute task** executes rounds FIFO through the same
  :func:`~repro.runtime.backend.run_job_compute` every other backend
  uses — the numpy work hops to the loop's executor so the receive
  task keeps answering probes mid-compute — applies the configured
  straggler sleep (``asyncio.sleep``, cancellable mid-straggle) and
  Byzantine behaviour, and transmits ``result`` frames (a silent
  behaviour reports ``ok=False`` so the master records a never-arrived
  worker instead of waiting out a heartbeat timeout; a computation
  error is reported crash-stop, exactly like the process backend).

Fault injection for tests can come from either end: the master's
``config`` carries the session's :class:`~repro.api.config.WorkerSpec`
description, and the daemon's own CLI flags
(``python -m repro.runtime.net.worker --behavior reverse ...``)
override it — that is how a multi-host test injects a fault at the
worker side without the master's cooperation.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
from typing import Any

import numpy as np

from repro.ff.field import DEFAULT_PRIME, PrimeField
from repro.runtime.backend import RoundJob, run_job_compute
from repro.runtime.byzantine import Behavior
from repro.runtime.net.wire import (
    PROTOCOL_VERSION,
    WireError,
    behavior_from_dict,
    encode_frame,
    read_frame_async,
)

__all__ = ["WorkerServer"]


class WorkerServer:
    """One worker node serving the wire protocol.

    Parameters left as ``None`` are taken from the master's ``config``
    frame; explicitly passed values (the daemon CLI's injection flags)
    take precedence over it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: int,
        *,
        straggler_factor: float | None = None,
        behavior: Behavior | None = None,
        straggle_scale: float | None = None,
        q: int | None = None,
        connect_timeout: float = 30.0,
    ):
        if worker_id < 0:
            raise ValueError(f"worker_id must be >= 0, got {worker_id}")
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self._cli_factor = straggler_factor
        self._cli_behavior = behavior
        self._cli_scale = straggle_scale
        self._cli_q = q
        self.connect_timeout = connect_timeout

        self.factor = 1.0
        self.behavior: Behavior | None = None
        self.straggle_scale = 0.05
        self.field = PrimeField(q or DEFAULT_PRIME)
        self.payload: dict[str, np.ndarray] = {}
        self._rng = np.random.default_rng(worker_id)
        self._writer: asyncio.StreamWriter | None = None
        self._send_lock: asyncio.Lock | None = None
        self._inbox: asyncio.Queue | None = None
        #: rids cancelled but not yet seen by the compute task. Bounded:
        #: cancels at or below the served watermark are dropped on
        #: arrival (the round already finished here), and _serve_round
        #: prunes everything up to its own rid — a long-lived daemon
        #: never accumulates stale cancellations. Receive and compute
        #: tasks share one loop, so no lock guards the set.
        self._cancelled: set[int] = set()
        self._served_rid = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def _dial_once(self) -> socket.socket:
        # IP-literal hosts skip getaddrinfo: fork-mode fleets may fork
        # while another thread of the parent sits inside a resolver
        # call holding a libc-internal lock, and a child that calls
        # getaddrinfo then deadlocks on the orphaned lock
        try:
            socket.inet_pton(socket.AF_INET, self.host)
        except OSError:
            return socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.connect_timeout)
            sock.connect((self.host, self.port))
        except OSError:
            sock.close()
            raise
        return sock

    def _connect(self) -> socket.socket:
        """Dial the master, retrying until ``connect_timeout`` — the
        fleet launcher may start workers before the master listens.
        Dialing is plain blocking sockets *before* the loop starts, so
        no getaddrinfo ever runs on (or threads off) the event loop."""
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.01
        while True:
            try:
                sock = self._dial_once()
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(0.2, delay * 2)

    def _apply_config(self, fields: dict) -> None:
        q = self._cli_q if self._cli_q is not None else int(fields.get("q", self.field.q))
        self.field = PrimeField(q)
        self.straggle_scale = float(
            self._cli_scale
            if self._cli_scale is not None
            else fields.get("straggle_scale", self.straggle_scale)
        )
        self.factor = float(
            self._cli_factor
            if self._cli_factor is not None
            else fields.get("factor", 1.0)
        )
        if self._cli_behavior is not None:
            self.behavior = self._cli_behavior
        else:
            self.behavior = behavior_from_dict(fields.get("behavior", {}))
        self._rng = np.random.default_rng(int(fields.get("seed", self.worker_id)))

    def run(self) -> None:
        """Register with the master and serve until shutdown/EOF."""
        sock = self._connect()
        try:
            asyncio.run(self._serve(sock))
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    async def _serve(self, sock: socket.socket) -> None:
        reader, writer = await asyncio.open_connection(sock=sock)
        self._writer = writer
        self._send_lock = asyncio.Lock()
        self._inbox = asyncio.Queue()
        recv_task: asyncio.Task | None = None
        try:
            await self._send(
                "hello",
                {
                    "worker_id": self.worker_id,
                    "protocol": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                },
            )
            kind, fields, _ = await read_frame_async(reader)
            if kind != "config":
                raise WireError(f"expected a config frame after hello, got {kind!r}")
            self._apply_config(fields)
            recv_task = asyncio.get_running_loop().create_task(
                self._receive_loop(reader)
            )
            await self._compute_loop()
        finally:
            self._stopping = True
            if recv_task is not None:
                recv_task.cancel()
                await asyncio.gather(recv_task, return_exceptions=True)
            writer.close()

    # ------------------------------------------------------------------
    # receive task: keep the socket drained, answer liveness probes
    # ------------------------------------------------------------------
    async def _receive_loop(self, reader: asyncio.StreamReader) -> None:
        assert self._inbox is not None
        try:
            while not self._stopping:
                kind, fields, arrays = await read_frame_async(reader)
                if kind == "heartbeat":
                    await self._send("heartbeat_ack", {"seq": fields.get("seq", 0)})
                elif kind == "cancel":
                    rid = int(fields["rid"])
                    if rid > self._served_rid:  # else: already done
                        self._cancelled.add(rid)
                elif kind == "shutdown":
                    await self._inbox.put(None)
                    return
                else:
                    if kind == "round":
                        # receipt timestamp: anchors the daemon's own
                        # sub-spans when the round is traced
                        fields["_t_recv"] = time.perf_counter()
                    await self._inbox.put((kind, fields, arrays))
        except (WireError, OSError, ConnectionError, asyncio.IncompleteReadError):
            # master went away (or spoke garbage): drain and exit
            await self._inbox.put(None)

    async def _send(self, kind: str, fields: dict, arrays: tuple = ()) -> bool:
        assert self._writer is not None and self._send_lock is not None
        assert self._inbox is not None
        try:
            async with self._send_lock:
                for part in encode_frame(kind, fields, arrays):
                    self._writer.write(
                        bytes(part) if isinstance(part, memoryview) else part
                    )
                await self._writer.drain()
            return True
        except (OSError, ConnectionError):
            self._stopping = True
            self._inbox.put_nowait(None)
            return False

    # ------------------------------------------------------------------
    # compute task
    # ------------------------------------------------------------------
    async def _compute_loop(self) -> None:
        assert self._inbox is not None
        while True:
            item = await self._inbox.get()
            if item is None:
                return
            kind, fields, arrays = item
            if kind == "store":
                # copy out of the frame buffer: shares live for the
                # worker's whole lifetime, frames do not
                self.payload[str(fields["name"])] = np.array(arrays[0], copy=True)
            elif kind == "round":
                await self._serve_round(fields, arrays)
            # anything else is ignored: forward compatibility

    def _is_cancelled(self, rid: int) -> bool:
        return rid in self._cancelled

    async def _serve_round(self, fields: dict, arrays: list[np.ndarray]) -> None:
        rid = int(fields["rid"])
        try:
            await self._serve_round_inner(rid, fields, arrays)
        finally:
            # rounds are served in dispatch order, so anything at or
            # below this rid can no longer be usefully cancelled
            self._served_rid = max(self._served_rid, rid)
            self._cancelled = {r for r in self._cancelled if r > rid}

    async def _serve_round_inner(
        self, rid: int, fields: dict, arrays: list[np.ndarray]
    ) -> None:
        if self._is_cancelled(rid):
            return
        traced = bool(fields.get("trace"))
        t_recv = fields.get("_t_recv")
        t_dq = time.perf_counter()
        if self.factor > 1.0:
            await asyncio.sleep((self.factor - 1.0) * self.straggle_scale)
        if self._is_cancelled(rid):  # cancelled while straggling
            return
        value: np.ndarray | None = None
        err: str | None = None
        t0 = time.perf_counter()
        try:
            job = RoundJob(
                op=str(fields["op"]),
                payload_key=str(fields["payload_key"]),
                operand=arrays[0] if arrays else None,
                rhs_key=fields.get("rhs_key"),
            )
            # numpy work leaves the loop so heartbeat acks flow
            # mid-compute; one job at a time preserves FIFO order
            honest = await asyncio.get_running_loop().run_in_executor(
                None, run_job_compute, self.field, self.payload, job
            )
            assert self.behavior is not None
            value = self.behavior.corrupt(honest, self.field, self._rng)
        except Exception as exc:  # crash-stop: report, stay alive
            value, err = None, repr(exc)
        compute_time = time.perf_counter() - t0
        meta: dict[str, Any] = {
            "rid": rid,
            "worker_id": self.worker_id,
            "compute_time": compute_time,
            "ok": value is not None,
            "err": err,
        }
        if fields.get("attest") and value is not None:
            # countersign the *shipped* value (post-corruption): the
            # attestation proves what this daemon sent, not that the
            # share is honest — verification establishes honesty
            from repro.obs.audit import digest_array

            meta["digest"] = digest_array(value)
        if traced:
            # sub-spans as offsets from frame receipt; the master
            # anchors them so the last span ends at result arrival,
            # which folds encode + uplink into "worker.send"
            base = t_recv if isinstance(t_recv, (int, float)) else t_dq
            c0 = max(t0 - base, t_dq - base)
            c1 = c0 + compute_time
            spans = [["worker.recv", 0.0, max(0.0, t_dq - base)]]
            if self.factor > 1.0:
                spans.append(["worker.straggle", t_dq - base, t0 - base])
            spans.append(["worker.compute", c0, c1])
            spans.append(
                ["worker.send", c1, max(c1, time.perf_counter() - base)]
            )
            meta["spans"] = [[n, round(a, 9), round(b, 9)] for n, a, b in spans]
        await self._send("result", meta, (value,) if value is not None else ())
