"""The remote worker daemon of the TCP backend.

One :class:`WorkerServer` is one worker node: it dials the master's
listening socket, registers with a ``hello`` frame, receives its
``config`` (field modulus, straggler factor, behaviour, straggle
scale — the same fleet description the in-process backends apply
directly), then serves the store/round protocol until it is shut down
or the connection drops.

Two threads split the work so the daemon never deadlocks and never
goes dark:

* the **receiver** drains the socket continuously — heartbeats are
  acknowledged inline (so a worker grinding through a long compute, or
  sleeping out an injected straggle, still proves liveness), cancels
  are noted, and store/round messages are queued for the compute loop.
  Draining eagerly also means the master's share distribution can
  never block on a worker that is busy computing.
* the **compute loop** executes rounds FIFO through the same
  :func:`~repro.runtime.backend.run_job_compute` every other backend
  uses, applies the configured straggler sleep and Byzantine
  behaviour, and transmits ``result`` frames (a silent behaviour
  reports ``ok=False`` so the master records a never-arrived worker
  instead of waiting out a heartbeat timeout; a computation error is
  reported crash-stop, exactly like the process backend).

Fault injection for tests can come from either end: the master's
``config`` carries the session's :class:`~repro.api.config.WorkerSpec`
description, and the daemon's own CLI flags
(``python -m repro.runtime.net.worker --behavior reverse ...``)
override it — that is how a multi-host test injects a fault at the
worker side without the master's cooperation.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Any

import numpy as np

from repro.ff.field import DEFAULT_PRIME, PrimeField
from repro.runtime.backend import RoundJob, run_job_compute
from repro.runtime.byzantine import Behavior
from repro.runtime.net.wire import (
    PROTOCOL_VERSION,
    WireError,
    behavior_from_dict,
    read_frame,
    send_frame,
)

__all__ = ["WorkerServer"]


class WorkerServer:
    """One worker node serving the wire protocol.

    Parameters left as ``None`` are taken from the master's ``config``
    frame; explicitly passed values (the daemon CLI's injection flags)
    take precedence over it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: int,
        *,
        straggler_factor: float | None = None,
        behavior: Behavior | None = None,
        straggle_scale: float | None = None,
        q: int | None = None,
        connect_timeout: float = 30.0,
    ):
        if worker_id < 0:
            raise ValueError(f"worker_id must be >= 0, got {worker_id}")
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self._cli_factor = straggler_factor
        self._cli_behavior = behavior
        self._cli_scale = straggle_scale
        self._cli_q = q
        self.connect_timeout = connect_timeout

        self.factor = 1.0
        self.behavior: Behavior | None = None
        self.straggle_scale = 0.05
        self.field = PrimeField(q or DEFAULT_PRIME)
        self.payload: dict[str, np.ndarray] = {}
        self._rng = np.random.default_rng(worker_id)
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._inbox: queue.Queue[tuple[str, dict, list[np.ndarray]] | None] = queue.Queue()
        #: rids cancelled but not yet seen by the compute loop. Bounded:
        #: cancels at or below the served watermark are dropped on
        #: arrival (the round already finished here), and _serve_round
        #: prunes everything up to its own rid — a long-lived daemon
        #: never accumulates stale cancellations. The lock covers the
        #: receiver-thread add racing the compute-thread prune.
        self._cancelled: set[int] = set()
        self._cancel_lock = threading.Lock()
        self._served_rid = 0
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def _dial_once(self) -> socket.socket:
        # IP-literal hosts skip getaddrinfo: fork-mode fleets may fork
        # while another thread of the parent sits inside a resolver
        # call holding a libc-internal lock, and a child that calls
        # getaddrinfo then deadlocks on the orphaned lock
        try:
            socket.inet_pton(socket.AF_INET, self.host)
        except OSError:
            return socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.connect_timeout)
            sock.connect((self.host, self.port))
        except OSError:
            sock.close()
            raise
        return sock

    def _connect(self) -> socket.socket:
        """Dial the master, retrying until ``connect_timeout`` — the
        fleet launcher may start workers before the master listens."""
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.01
        while True:
            try:
                sock = self._dial_once()
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(0.2, delay * 2)

    def _apply_config(self, fields: dict) -> None:
        q = self._cli_q if self._cli_q is not None else int(fields.get("q", self.field.q))
        self.field = PrimeField(q)
        self.straggle_scale = float(
            self._cli_scale
            if self._cli_scale is not None
            else fields.get("straggle_scale", self.straggle_scale)
        )
        self.factor = float(
            self._cli_factor
            if self._cli_factor is not None
            else fields.get("factor", 1.0)
        )
        if self._cli_behavior is not None:
            self.behavior = self._cli_behavior
        else:
            self.behavior = behavior_from_dict(fields.get("behavior", {}))
        self._rng = np.random.default_rng(int(fields.get("seed", self.worker_id)))

    def run(self) -> None:
        """Register with the master and serve until shutdown/EOF."""
        self._sock = self._connect()
        try:
            send_frame(
                self._sock,
                "hello",
                {
                    "worker_id": self.worker_id,
                    "protocol": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                },
                lock=self._send_lock,
            )
            kind, fields, _ = read_frame(self._sock)
            if kind != "config":
                raise WireError(f"expected a config frame after hello, got {kind!r}")
            self._apply_config(fields)
            reader = threading.Thread(target=self._receive_loop, daemon=True)
            reader.start()
            self._compute_loop()
        finally:
            self._stopping.set()
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------
    # receiver thread: keep the socket drained, answer liveness probes
    # ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        assert self._sock is not None
        try:
            while not self._stopping.is_set():
                kind, fields, arrays = read_frame(self._sock)
                if kind == "heartbeat":
                    self._send("heartbeat_ack", {"seq": fields.get("seq", 0)})
                elif kind == "cancel":
                    rid = int(fields["rid"])
                    with self._cancel_lock:
                        if rid > self._served_rid:  # else: already done
                            self._cancelled.add(rid)
                elif kind == "shutdown":
                    self._inbox.put(None)
                    return
                else:
                    self._inbox.put((kind, fields, arrays))
        except (WireError, OSError, ConnectionError):
            # master went away (or spoke garbage): drain and exit
            self._inbox.put(None)

    def _send(self, kind: str, fields: dict, arrays: tuple = ()) -> bool:
        assert self._sock is not None
        try:
            send_frame(self._sock, kind, fields, arrays, lock=self._send_lock)
            return True
        except (OSError, ConnectionError):
            self._stopping.set()
            return False

    # ------------------------------------------------------------------
    # compute loop
    # ------------------------------------------------------------------
    def _compute_loop(self) -> None:
        while True:
            item = self._inbox.get()
            if item is None:
                return
            kind, fields, arrays = item
            if kind == "store":
                # copy out of the frame buffer: shares live for the
                # worker's whole lifetime, frames do not
                self.payload[str(fields["name"])] = np.array(arrays[0], copy=True)
            elif kind == "round":
                self._serve_round(fields, arrays)
            # anything else is ignored: forward compatibility

    def _is_cancelled(self, rid: int) -> bool:
        with self._cancel_lock:
            return rid in self._cancelled

    def _serve_round(self, fields: dict, arrays: list[np.ndarray]) -> None:
        rid = int(fields["rid"])
        try:
            self._serve_round_inner(rid, fields, arrays)
        finally:
            # rounds are served in dispatch order, so anything at or
            # below this rid can no longer be usefully cancelled
            with self._cancel_lock:
                self._served_rid = max(self._served_rid, rid)
                self._cancelled = {r for r in self._cancelled if r > rid}

    def _serve_round_inner(
        self, rid: int, fields: dict, arrays: list[np.ndarray]
    ) -> None:
        if self._is_cancelled(rid):
            return
        if self.factor > 1.0:
            time.sleep((self.factor - 1.0) * self.straggle_scale)
        if self._is_cancelled(rid):  # cancelled while straggling
            return
        value: np.ndarray | None = None
        err: str | None = None
        t0 = time.perf_counter()
        try:
            job = RoundJob(
                op=str(fields["op"]),
                payload_key=str(fields["payload_key"]),
                operand=arrays[0] if arrays else None,
                rhs_key=fields.get("rhs_key"),
            )
            honest = run_job_compute(self.field, self.payload, job)
            assert self.behavior is not None
            value = self.behavior.corrupt(honest, self.field, self._rng)
        except Exception as exc:  # crash-stop: report, stay alive
            value, err = None, repr(exc)
        compute_time = time.perf_counter() - t0
        meta: dict[str, Any] = {
            "rid": rid,
            "worker_id": self.worker_id,
            "compute_time": compute_time,
            "ok": value is not None,
            "err": err,
        }
        self._send("result", meta, (value,) if value is not None else ())
