"""The TCP socket runtime: wire protocol, worker daemons, fleet tools.

This package turns the reproduction into a deployable distributed
system: the master (:class:`TcpCluster`, or its event-loop twin
:class:`AsyncTcpCluster`) and its workers (:class:`WorkerServer`,
``python -m repro.runtime.net.worker``) are separate processes —
separate hosts, if you like — speaking a framed, checksummed binary
protocol (:mod:`repro.runtime.net.wire`) with zero-copy numpy
payloads. See the README's "Distributed deployment" section for the
operational guide.

``wire``           framed messages, protocol version, checksums
``tunables``       shared liveness/deadline knobs (:class:`NetTunables`)
``worker_server``  the worker daemon (one asyncio loop per worker)
``worker``         the ``python -m`` CLI entrypoint for daemons
``client``         :class:`TcpCluster` — selector-pumped sync Backend
``async_client``   :class:`AsyncTcpCluster` — one event loop, O(1) threads
``fleet``          loopback fleet spawning for tests/examples/benches
"""

from repro.runtime.net.async_client import AsyncTcpCluster, AsyncTcpRoundHandle
from repro.runtime.net.client import TcpCluster, TcpRoundHandle
from repro.runtime.net.fleet import LocalFleet, free_port, spawn_local_workers
from repro.runtime.net.tunables import NetTunables
from repro.runtime.net.wire import (
    MSG_CODES,
    PROTOCOL_VERSION,
    WireError,
    behavior_from_dict,
    behavior_to_dict,
    decode_payload,
    encode_frame,
    read_frame,
    read_frame_async,
    send_frame,
)
from repro.runtime.net.worker_server import WorkerServer

__all__ = [
    "AsyncTcpCluster",
    "AsyncTcpRoundHandle",
    "LocalFleet",
    "MSG_CODES",
    "NetTunables",
    "PROTOCOL_VERSION",
    "TcpCluster",
    "TcpRoundHandle",
    "WireError",
    "WorkerServer",
    "behavior_from_dict",
    "behavior_to_dict",
    "decode_payload",
    "encode_frame",
    "free_port",
    "read_frame",
    "read_frame_async",
    "send_frame",
    "spawn_local_workers",
]
