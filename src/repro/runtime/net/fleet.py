"""Fleet launching: real socket workers on loopback, in one line.

Tests, examples and benchmarks need a genuine TCP fleet without a
deployment step. Two spawn modes cover that:

* ``"fork"`` (default, POSIX): each worker is a forked
  :mod:`multiprocessing` process running
  :class:`~repro.runtime.net.worker_server.WorkerServer` directly —
  millisecond startup, no re-import of numpy, but same-host only.
* ``"subprocess"``: each worker is a fresh interpreter running the
  real ``python -m repro.runtime.net.worker`` CLI — exactly what a
  remote host would run, used by the tests that validate the
  entrypoint itself.

Workers dial the master with retries, so the launch order is
flexible: either create the (listening) :class:`TcpCluster` first and
point a fleet at its ephemeral port, or grab a port with
:func:`free_port`, spawn the fleet, then construct the cluster with
``spawn_workers=False`` — the workers wait for the master to appear.

:class:`LocalFleet` is a context manager; leaving the block terminates
every worker process. It is also *elastic*: :meth:`LocalFleet.
spawn_worker` launches an additional daemon into the live cluster and
:meth:`LocalFleet.restart_worker` replaces a dead one — the new
process dials the same master address and is admitted at the next
between-rounds quiesce point. The
:class:`~repro.runtime.net.client.TcpCluster` spawns (and owns) one
internally when ``spawn_workers=True``, so
``SessionConfig(backend="tcp")`` needs no launcher at all.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
import threading
from collections import deque
from pathlib import Path
from typing import Sequence

__all__ = ["LocalFleet", "free_port", "spawn_local_workers"]

#: ports handed out recently but possibly not yet bound by their taker.
#: ``free_port`` binds port 0, reads the assignment and *closes* the
#: socket — between that close and the caller's own bind the OS may
#: hand the same port to another ``free_port`` call (test processes
#: grab several in quick succession). Remembering the last few issued
#: ports and skipping them closes that reuse race.
_RECENT_PORTS: deque[int] = deque(maxlen=128)
_RECENT_LOCK = threading.Lock()


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for spawn-fleet-first flows).

    Guarded against back-to-back reuse: a port issued by a recent call
    in this process is never handed out again until 128 further ports
    have been issued — by then its taker has long since bound it (or
    abandoned it)."""
    import socket

    for _ in range(32):
        with socket.socket() as sock:
            sock.bind((host, 0))
            port = sock.getsockname()[1]
        with _RECENT_LOCK:
            if port not in _RECENT_PORTS:
                _RECENT_PORTS.append(port)
                return port
    # the OS insists on recycling: accept the collision risk rather
    # than spin forever (practically unreachable)
    return port  # pragma: no cover


def _worker_entry(host: str, port: int, worker_id: int, connect_timeout: float) -> None:
    from repro.runtime.net.worker_server import WorkerServer

    WorkerServer(host, port, worker_id, connect_timeout=connect_timeout).run()


class LocalFleet:
    """A group of locally spawned worker processes (context manager).

    ``host``/``port``/``connect_timeout`` record the master address the
    fleet dials; they are what let :meth:`spawn_worker` and
    :meth:`restart_worker` launch replacements into a live cluster.
    """

    def __init__(
        self,
        procs: dict[int, object],
        mode: str,
        *,
        host: str | None = None,
        port: int | None = None,
        connect_timeout: float = 30.0,
    ):
        #: worker_id -> process (multiprocessing.Process or Popen)
        self.procs = procs
        self.mode = mode
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout

    def pids(self) -> dict[int, int]:
        return {wid: int(p.pid) for wid, p in self.procs.items()}

    # ------------------------------------------------------------------
    # elastic spawning
    # ------------------------------------------------------------------
    def spawn_worker(self, worker_id: int) -> None:
        """Launch one additional daemon dialing the fleet's master.

        The process registers with ``hello`` like any other worker; a
        running cluster parks it as a pending join until its next
        ``admit_workers()``. Raises if ``worker_id`` already has a
        live process (use :meth:`restart_worker` for replacements).
        """
        if self.host is None or self.port is None:
            raise RuntimeError(
                "this fleet was built without a master address; "
                "spawn_worker needs the host/port the workers dial"
            )
        wid = int(worker_id)
        proc = self.procs.get(wid)
        if proc is not None and self._alive(proc):
            raise ValueError(
                f"worker {wid} already has a live process (pid {proc.pid}); "
                "use restart_worker to replace it"
            )
        self.procs[wid] = _spawn_one(
            self.host, self.port, wid, self.mode, self.connect_timeout
        )

    def restart_worker(self, worker_id: int) -> None:
        """Replace ``worker_id``'s process with a fresh daemon
        (terminating the old one first if it is somehow still alive).
        The restarted daemon re-dials the master — a rejoin is a fresh
        registration, admitted between rounds."""
        if self.host is None or self.port is None:
            raise RuntimeError(
                "this fleet was built without a master address; "
                "restart_worker needs the host/port the workers dial"
            )
        wid = int(worker_id)
        proc = self.procs.pop(wid, None)
        if proc is not None:
            self._stop_one(proc)
        self.procs[wid] = _spawn_one(
            self.host, self.port, wid, self.mode, self.connect_timeout
        )

    def _alive(self, proc: object) -> bool:
        if self.mode == "fork":
            return bool(proc.is_alive())
        return proc.poll() is None

    def _stop_one(self, proc: object, timeout: float = 2.0) -> None:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            if self.mode == "fork":
                proc.join(timeout)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.kill()
                    proc.join(timeout)
            else:
                proc.wait(timeout)
        except (OSError, ValueError, subprocess.TimeoutExpired):
            pass  # pragma: no cover - reaping is best-effort

    def terminate(self, timeout: float = 2.0) -> None:
        """Stop every still-running worker (idempotent)."""
        for proc in self.procs.values():
            try:
                proc.terminate()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        for proc in self.procs.values():
            try:
                if self.mode == "fork":
                    proc.join(timeout)
                    if proc.is_alive():  # pragma: no cover - stuck worker
                        proc.kill()
                        proc.join(timeout)
                else:
                    proc.wait(timeout)
            except (OSError, ValueError, subprocess.TimeoutExpired):
                pass  # pragma: no cover - reaping is best-effort

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.terminate()
        return False


def _spawn_one(
    host: str, port: int, worker_id: int, mode: str, connect_timeout: float
) -> object:
    """Start one worker daemon process (fork or subprocess mode)."""
    if mode == "fork":
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        proc = ctx.Process(
            target=_worker_entry,
            args=(host, port, int(worker_id), connect_timeout),
            daemon=True,
        )
        proc.start()
        return proc
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime.net.worker",
            "--host",
            host,
            "--port",
            str(port),
            "--worker-id",
            str(int(worker_id)),
            "--connect-timeout",
            str(connect_timeout),
        ],
        env=env,
    )


def spawn_local_workers(
    host: str,
    port: int,
    worker_ids: Sequence[int],
    *,
    mode: str = "fork",
    connect_timeout: float = 30.0,
) -> LocalFleet:
    """Spawn one worker daemon per id, all dialing ``host:port``."""
    if mode not in ("fork", "subprocess"):
        raise ValueError(f"unknown spawn mode {mode!r} (use 'fork' or 'subprocess')")
    procs: dict[int, object] = {
        int(wid): _spawn_one(host, port, int(wid), mode, connect_timeout)
        for wid in worker_ids
    }
    return LocalFleet(
        procs, mode, host=host, port=port, connect_timeout=connect_timeout
    )
