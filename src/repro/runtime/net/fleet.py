"""Fleet launching: real socket workers on loopback, in one line.

Tests, examples and benchmarks need a genuine TCP fleet without a
deployment step. Two spawn modes cover that:

* ``"fork"`` (default, POSIX): each worker is a forked
  :mod:`multiprocessing` process running
  :class:`~repro.runtime.net.worker_server.WorkerServer` directly —
  millisecond startup, no re-import of numpy, but same-host only.
* ``"subprocess"``: each worker is a fresh interpreter running the
  real ``python -m repro.runtime.net.worker`` CLI — exactly what a
  remote host would run, used by the tests that validate the
  entrypoint itself.

Workers dial the master with retries, so the launch order is
flexible: either create the (listening) :class:`TcpCluster` first and
point a fleet at its ephemeral port, or grab a port with
:func:`free_port`, spawn the fleet, then construct the cluster with
``spawn_workers=False`` — the workers wait for the master to appear.

:class:`LocalFleet` is a context manager; leaving the block terminates
every worker process. The :class:`~repro.runtime.net.client.TcpCluster`
spawns (and owns) one internally when ``spawn_workers=True``, so
``SessionConfig(backend="tcp")`` needs no launcher at all.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
from pathlib import Path
from typing import Sequence

__all__ = ["LocalFleet", "free_port", "spawn_local_workers"]


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for spawn-fleet-first flows)."""
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _worker_entry(host: str, port: int, worker_id: int, connect_timeout: float) -> None:
    from repro.runtime.net.worker_server import WorkerServer

    WorkerServer(host, port, worker_id, connect_timeout=connect_timeout).run()


class LocalFleet:
    """A group of locally spawned worker processes (context manager)."""

    def __init__(self, procs: dict[int, object], mode: str):
        #: worker_id -> process (multiprocessing.Process or Popen)
        self.procs = procs
        self.mode = mode

    def pids(self) -> dict[int, int]:
        return {wid: int(p.pid) for wid, p in self.procs.items()}

    def terminate(self, timeout: float = 2.0) -> None:
        """Stop every still-running worker (idempotent)."""
        for proc in self.procs.values():
            try:
                proc.terminate()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        for proc in self.procs.values():
            try:
                if self.mode == "fork":
                    proc.join(timeout)
                    if proc.is_alive():  # pragma: no cover - stuck worker
                        proc.kill()
                        proc.join(timeout)
                else:
                    proc.wait(timeout)
            except (OSError, ValueError, subprocess.TimeoutExpired):
                pass  # pragma: no cover - reaping is best-effort

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.terminate()
        return False


def spawn_local_workers(
    host: str,
    port: int,
    worker_ids: Sequence[int],
    *,
    mode: str = "fork",
    connect_timeout: float = 30.0,
) -> LocalFleet:
    """Spawn one worker daemon per id, all dialing ``host:port``."""
    if mode not in ("fork", "subprocess"):
        raise ValueError(f"unknown spawn mode {mode!r} (use 'fork' or 'subprocess')")
    procs: dict[int, object] = {}
    if mode == "fork":
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        for wid in worker_ids:
            proc = ctx.Process(
                target=_worker_entry,
                args=(host, port, int(wid), connect_timeout),
                daemon=True,
            )
            proc.start()
            procs[int(wid)] = proc
    else:
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        for wid in worker_ids:
            procs[int(wid)] = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.runtime.net.worker",
                    "--host",
                    host,
                    "--port",
                    str(port),
                    "--worker-id",
                    str(int(wid)),
                    "--connect-timeout",
                    str(connect_timeout),
                ],
                env=env,
            )
    return LocalFleet(procs, mode)
