"""Validated network tunables shared by the sync and async backends.

The tcp backends used to hardcode their liveness/deadline constants as
constructor defaults scattered across :mod:`client`,
:mod:`async_client` and :mod:`worker_server`. :class:`NetTunables`
lifts them into one frozen, validated object so a deployment tunes one
knob surface: :class:`~repro.api.config.SessionConfig` carries a
``net`` field, the backend factories thread it into whichever cluster
the registry name selects, and explicit ``backend_options`` entries
still win for per-run overrides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["NetTunables"]


@dataclass(frozen=True)
class NetTunables:
    """Liveness and deadline knobs of the socket backends.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between liveness probes to each worker.
    heartbeat_timeout:
        Seconds an unanswered probe may age before the worker is
        marked dead (the dead-worker threshold). Must exceed the
        interval, or every worker would flap dead between probes.
    io_timeout:
        Per-socket I/O deadline in seconds: how long one send/receive
        on a single worker's socket may stall before that worker is
        marked dead. ``None`` (default) inherits ``heartbeat_timeout``
        — a peer wedged mid-frame looks exactly like a peer that
        stopped acking probes.
    round_timeout:
        Per-round collect deadline in seconds (``None`` disables):
        workers silent past it are recorded as never-arrived for that
        round only, and stay in the pool.
    """

    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 10.0
    io_timeout: float | None = None
    round_timeout: float | None = 120.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval})"
            )
        if self.io_timeout is not None and self.io_timeout <= 0:
            raise ValueError(f"io_timeout must be > 0 or None, got {self.io_timeout}")
        if self.round_timeout is not None and self.round_timeout <= 0:
            raise ValueError(
                f"round_timeout must be > 0 or None, got {self.round_timeout}"
            )

    @property
    def effective_io_timeout(self) -> float:
        """The per-socket deadline with the heartbeat fallback applied."""
        return self.io_timeout if self.io_timeout is not None else self.heartbeat_timeout

    def backend_kwargs(self) -> dict[str, Any]:
        """The tunables as cluster-constructor keyword arguments."""
        return {
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
            "io_timeout": self.io_timeout,
            "round_timeout": self.round_timeout,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetTunables":
        """Build from a plain mapping; unknown keys are rejected."""
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown NetTunables keys: {sorted(unknown)}")
        return cls(**data)
