"""The TCP socket execution backend: a master over remote workers.

:class:`TcpCluster` is the fourth :class:`~repro.runtime.backend.Backend`
and the first whose workers live outside the master's address space by
construction: each worker is a daemon process
(:mod:`repro.runtime.net.worker_server`) reached over a real socket
with real serialization (:mod:`repro.runtime.net.wire`). This is the
deployment model of the paper's testbed — a master node coordinating a
fleet of worker hosts — and the gateway/session stack runs over it
unchanged.

Wiring
------
The master listens; workers dial in and register with ``hello``. With
``spawn_workers=True`` (the default, and what the ``"tcp"`` registry
name uses) the cluster launches a loopback fleet itself via
:mod:`repro.runtime.net.fleet`; with ``spawn_workers=False`` it waits
``connect_timeout`` seconds for externally started daemons (other
hosts, containers) to connect to ``host:port``.

Round transport
---------------
Rounds mirror the process backend's demultiplexed design: every
dispatch broadcasts one pre-encoded ``round`` frame (the operand is
serialized once, not once per worker), results stream back tagged with
their round id, and a central pump routes each to the owning
:class:`TcpRoundHandle` — so several rounds stay in flight at once and
no handle can steal another round's replies. ``cancel`` is idempotent,
safe after ``result()``, and additionally ships ``cancel`` frames so
workers skip rounds still sitting in their queues.

Fault tolerance
---------------
A worker is *dead* when its socket errors/EOFs (killed process,
closed laptop) or when it leaves a heartbeat unanswered for
``heartbeat_timeout`` seconds (wedged host, dropped network). Dead
workers are marked permanently silent: every in-flight round records
them as never-arrived — the same observation a straggler produces —
so the master's waiting policy and the adaptive re-coding absorb the
failure instead of hanging. Heartbeats ride the same pump that
collects results, and the worker daemon acknowledges them from its
receiver thread even mid-compute, so a slow worker is never mistaken
for a dead one. ``round_timeout`` bounds each round's collect phase:
workers that produced nothing by then are recorded as never-arrived
for that round (but stay in the pool).

Worker-pool mutation (dynamic re-coding) disconnects dropped workers
for real: ``drop_workers`` ships ``shutdown`` and closes the socket.

Elastic membership
------------------
The listener stays open for the cluster's whole life: a daemon dialing
in *after* the initial registration — a restarted process rejoining,
or a brand-new worker scaling the fleet up — completes the same
``hello``/``config`` handshake (version-checked by
:func:`~repro.runtime.net.wire.check_hello`) and is parked as a
*pending join*. Pending joins are admitted into the roster only by an
explicit :meth:`TcpCluster.admit_workers` call, which refuses to run
while rounds are in flight — membership changes happen at the same
between-rounds quiesce points as dynamic re-coding, never mid-round.
``drop_workers`` is therefore reversible: a dropped id that re-dials
is re-admitted like any rejoin. :meth:`TcpCluster.membership` reports
the live/dead/dropped/pending split and
:meth:`~repro.runtime.backend.Backend.take_membership_events` the
transition history.
"""

from __future__ import annotations

import selectors
import socket
import time
from typing import Iterator, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.backend import (
    Arrival,
    MembershipView,
    RoundHandle,
    RoundJob,
    RoundResult,
    WallClockBackend,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.net.fleet import LocalFleet, spawn_local_workers
from repro.runtime.net.tunables import NetTunables
from repro.runtime.net.wire import (
    WireCounters,
    WireError,
    behavior_to_dict,
    check_hello,
    encode_frame,
    read_frame,
    send_frame,
    send_parts,
)
from repro.runtime.worker import SimWorker

__all__ = ["TcpCluster", "TcpRoundHandle"]


class TcpRoundHandle(RoundHandle):
    """One in-flight socket round.

    Replies are received centrally (:meth:`TcpCluster._pump`) and
    routed here by round id; iterating drains the inbox, pumping
    whenever it runs dry, and yields results in true arrival order.
    """

    def __init__(
        self,
        cluster: "TcpCluster",
        rid: int,
        participants: list[int],
        deadline: float | None,
    ):
        self._cluster = cluster
        self._rid = rid
        self._participants = participants
        self._deadline = deadline  # monotonic-clock collect deadline
        self._received: dict[int, Arrival] = {}
        self._inbox: list[Arrival] = []
        #: worker_id -> error reported by its computation (repr string)
        self.worker_errors: dict[int, str] = {}
        #: worker_id -> daemon-side sub-spans ([[name, t0, t1], ...],
        #: times relative to frame receipt) from traced result frames
        self.worker_spans: dict[int, list] = {}
        #: worker_id -> daemon-countersigned result digest from
        #: attested result frames (audit armed); the master's audit
        #: commitment cross-checks these against its own digests
        self.worker_digests: dict[int, str] = {}
        self._cancelled = False
        self.t_start = cluster.now
        self.broadcast_time = cluster._last_broadcast_time
        self._outstanding: set[int] = set()
        for wid in participants:
            if wid in cluster._dead:
                self._received[wid] = self._missing(wid)
            else:
                self._outstanding.add(wid)
        cluster._handles[rid] = self

    # ------------------------------------------------------------------
    # delivery callbacks (invoked by the cluster's pump)
    # ------------------------------------------------------------------
    def _deliver(
        self, wid: int, value, compute_time: float, err, spans=None, digest=None
    ) -> None:
        if wid not in self._outstanding:
            return
        self._outstanding.discard(wid)
        if err is not None:
            self.worker_errors[wid] = err
        if spans:
            self.worker_spans[wid] = spans
        if digest is not None:
            self.worker_digests[wid] = digest
        if value is None:
            self._received[wid] = self._missing(wid)
            return
        a = Arrival(
            worker_id=wid,
            value=value,
            t_arrival=max(self._cluster.now, self.t_start + self.broadcast_time),
            compute_time=compute_time,
            comm_time=0.0,
            truly_byzantine=self._cluster.workers[wid].is_byzantine,
        )
        self._received[wid] = a
        self._inbox.append(a)

    def _worker_died(self, wid: int) -> None:
        if wid in self._outstanding:
            self._outstanding.discard(wid)
            self._received[wid] = self._missing(wid)

    def _expire(self) -> None:
        """Collect deadline passed: record every straggler still
        outstanding as never-arrived (the workers stay in the pool)."""
        for wid in list(self._outstanding):
            self._worker_died(wid)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Arrival]:
        cluster = self._cluster
        any_finite = False
        while not self._cancelled:
            if self._inbox:
                any_finite = True
                yield self._inbox.pop(0)
                continue
            if not self._outstanding:
                break
            cluster._pump()
        if (
            not self._cancelled
            and not any_finite
            and not self._inbox
            and len(self.worker_errors) == len(self._participants)
        ):
            # every worker failed: a malformed job, not node failures
            self._cluster._handles.pop(self._rid, None)
            wid, err = next(iter(self.worker_errors.items()))
            raise RuntimeError(
                f"all {len(self._participants)} workers failed this round "
                f"(first error, worker {wid}: {err})"
            )

    def _missing(self, wid: int) -> Arrival:
        return self._cluster._missing_arrival(
            wid, self._cluster.workers[wid].is_byzantine
        )

    def cancel(self) -> None:
        """Stop waiting; workers are told to skip the round if it is
        still queued on their side. Idempotent, safe after ``result``."""
        if self._cancelled:
            return
        self._cancelled = True
        self._cluster._handles.pop(self._rid, None)
        self._cluster._send_cancel(self._rid, self._outstanding)

    def result(self) -> RoundResult:
        for wid in self._outstanding:
            self._received.setdefault(wid, self._missing(wid))
        self._cluster._handles.pop(self._rid, None)
        ordered = sorted(self._received.values(), key=lambda a: a.t_arrival)
        return RoundResult(
            t_start=self.t_start,
            broadcast_time=self.broadcast_time,
            arrivals=tuple(ordered),
        )


class TcpCluster(WallClockBackend):
    """Socket-fleet backend (master side).

    Parameters
    ----------
    field, workers, rng, straggle_scale, cost_model:
        As on the other backends; the worker descriptions (straggler
        factor, behaviour) are shipped to the daemons in their
        ``config`` frame, so one fleet description runs everywhere.
    host, port:
        Listen address. ``port=0`` (default) binds an ephemeral port,
        exposed as :attr:`port` — the loopback-fleet path needs no
        coordination. Remote fleets use a fixed port.
    connect_timeout:
        Seconds to wait for all ``n`` workers to register.
    heartbeat_interval / heartbeat_timeout:
        Liveness probing cadence, and how long an unanswered probe
        marks a worker dead. Probes ride the result pump, so they are
        active exactly while rounds are being collected.
    io_timeout:
        Per-socket I/O deadline in seconds; ``None`` (default)
        inherits ``heartbeat_timeout``. See
        :class:`~repro.runtime.net.tunables.NetTunables`.
    round_timeout:
        Per-round collect deadline in seconds (``None`` disables):
        workers silent past it are recorded as never-arrived for that
        round only.
    spawn_workers / spawn_mode:
        Self-launch a loopback fleet (``"fork"`` or ``"subprocess"``,
        see :mod:`repro.runtime.net.fleet`) or wait for external
        daemons.
    """

    def __init__(
        self,
        field: PrimeField,
        workers: Sequence[SimWorker],
        rng: np.random.Generator | None = None,
        straggle_scale: float = 0.05,
        cost_model: CostModel | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 30.0,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 10.0,
        io_timeout: float | None = None,
        round_timeout: float | None = 120.0,
        spawn_workers: bool = True,
        spawn_mode: str = "fork",
    ):
        ids = [w.worker_id for w in workers]
        if sorted(ids) != list(range(len(workers))):
            raise ValueError("worker ids must be exactly 0..n-1")
        tunables = NetTunables(
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            io_timeout=io_timeout,
            round_timeout=round_timeout,
        )
        self.field = field
        self.workers = list(sorted(workers, key=lambda w: w.worker_id))
        self.rng = rng or np.random.default_rng(0)
        self.straggle_scale = straggle_scale
        self.cost_model = cost_model or CostModel()
        self.host = host
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = tunables.heartbeat_interval
        self.heartbeat_timeout = tunables.heartbeat_timeout
        self.io_timeout = tunables.effective_io_timeout
        self.round_timeout = tunables.round_timeout
        self._init_wall_clock()

        self._rid = 0
        self._last_broadcast_time = 0.0
        self._dead: set[int] = set()
        self._handles: dict[int, TcpRoundHandle] = {}
        self._conns: dict[int, socket.socket] = {}
        self._sel = selectors.DefaultSelector()
        self.wire = WireCounters()
        self._hb_seq = 0
        self._last_hb = 0.0
        #: wid -> monotonic time of the oldest unanswered heartbeat
        self._hb_pending: dict[int, float | None] = {}
        #: wid -> (seq, monotonic send time) of the latest heartbeat,
        #: matched against acks for the per-worker RTT gauge
        self._hb_sent: dict[int, tuple[int, float]] = {}
        #: wid -> handshaken socket parked until the next admit_workers()
        self._pending_joins: dict[int, socket.socket] = {}
        self._fleet: LocalFleet | None = None
        self._closed = False

        self._listener = socket.create_server((host, port), backlog=len(self.workers))
        self.port = self._listener.getsockname()[1]
        try:
            if spawn_workers:
                self._fleet = spawn_local_workers(
                    "127.0.0.1" if host in ("0.0.0.0", "") else host,
                    self.port,
                    [w.worker_id for w in self.workers],
                    mode=spawn_mode,
                    connect_timeout=connect_timeout,
                )
            self._accept_fleet()
            # the listener stays open for late joiners: non-blocking
            # accepts ride the result pump via the selector
            self._listener.setblocking(False)
            self._sel.register(self._listener, selectors.EVENT_READ, data=None)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _accept_fleet(self) -> None:
        deadline = time.monotonic() + self.connect_timeout
        expected = {w.worker_id for w in self.workers}
        while self._conns.keys() != expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = sorted(expected - self._conns.keys())
                raise RuntimeError(
                    f"timed out waiting for workers {missing} to register on "
                    f"{self.host}:{self.port} (connect_timeout="
                    f"{self.connect_timeout}s)"
                )
            self._listener.settimeout(remaining)
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            conn.settimeout(max(0.1, remaining))
            try:
                kind, fields, _ = read_frame(conn, self.wire)
                if kind != "hello":
                    raise WireError(f"expected hello, got {kind!r}")
                wid = check_hello(fields)
                if wid not in expected or wid in self._conns:
                    raise WireError(f"unexpected or duplicate worker id {wid}")
                send_frame(conn, "config", self._worker_config(wid), counters=self.wire)
            except (WireError, OSError, ConnectionError, KeyError, ValueError):
                conn.close()
                continue
            # the per-socket I/O deadline (io_timeout, defaulting to
            # heartbeat_timeout): a peer stalled mid-frame (SIGSTOP,
            # silent partition) or a send into a full buffer raises
            # socket.timeout and is marked dead — the master must never
            # block unboundedly on one worker's socket
            conn.settimeout(self.io_timeout)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conns[wid] = conn
            self._sel.register(conn, selectors.EVENT_READ, data=wid)
            self._hb_pending[wid] = None

    def _worker_config(self, wid: int) -> dict:
        """The ``config`` frame for a worker id — the declared fleet
        spec when the id is known, honest full-speed defaults for a
        brand-new joiner beyond the current roster."""
        w = self.workers[wid] if wid < len(self.workers) else SimWorker(wid)
        return {
            "q": self.field.q,
            "straggle_scale": self.straggle_scale,
            "factor": float(getattr(w.profile, "factor", 1.0)),
            "behavior": behavior_to_dict(w.behavior),
            "seed": wid,
        }

    # ------------------------------------------------------------------
    # elastic membership: late joins, admission, fleet respawn
    # ------------------------------------------------------------------
    def _accept_pending(self) -> None:
        """Drain the listener backlog, handshaking each dialer into the
        pending-join pool (never into the live roster)."""
        if self._closed:
            return
        while True:
            try:
                conn, _ = self._listener.accept()
            except (BlockingIOError, socket.timeout, OSError):
                return
            self._handshake_joiner(conn)

    def _handshake_joiner(self, conn: socket.socket) -> None:
        # bounded handshake: a stalled dialer must not wedge the pump
        conn.settimeout(min(self.io_timeout or 2.0, 2.0))
        try:
            kind, fields, _ = read_frame(conn, self.wire)
            if kind != "hello":
                raise WireError(f"expected hello, got {kind!r}")
            wid = check_hello(fields)
            send_frame(conn, "config", self._worker_config(wid), counters=self.wire)
        except (WireError, OSError, ConnectionError, KeyError, ValueError):
            conn.close()
            return
        stale = self._pending_joins.pop(wid, None)
        if stale is not None:  # superseded by this fresher dial
            try:
                stale.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._pending_joins[wid] = conn

    def admit_workers(self) -> tuple[int, ...]:
        """Admit every admissible pending join into the roster.

        Must be called between rounds (raises ``RuntimeError`` while
        any round is in flight): admitted workers immediately count as
        live and would otherwise surface mid-round. A pending id that
        is still live is a duplicate dial and is discarded; an id past
        the end of the roster joins as a *new* honest worker (ids stay
        dense 0..n-1, so gapped ids wait for the gap to fill).
        """
        if self._handles:
            raise RuntimeError(
                "cannot admit workers mid-round: drain in-flight rounds first"
            )
        self._accept_pending()
        admitted: list[int] = []
        for wid in sorted(self._pending_joins):
            conn = self._pending_joins[wid]
            if wid in self._conns:
                del self._pending_joins[wid]
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                continue
            if wid > len(self.workers):
                continue
            del self._pending_joins[wid]
            fresh = wid == len(self.workers)
            if fresh:
                self.workers.append(SimWorker(wid))
            self._dead.discard(wid)
            self._dropped.discard(wid)
            conn.settimeout(self.io_timeout)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conns[wid] = conn
            self._sel.register(conn, selectors.EVENT_READ, data=wid)
            self._hb_pending[wid] = None
            self._note_membership("joined" if fresh else "rejoined", wid)
            admitted.append(wid)
        return tuple(admitted)

    def membership(self) -> MembershipView:
        """Current roster split (sweeps the listener backlog first, so
        a freshly dialed daemon shows up as pending right away)."""
        self._accept_pending()
        return MembershipView(
            n=len(self.workers),
            live=tuple(sorted(self._conns)),
            dead=tuple(sorted(self._dead - self._dropped)),
            dropped=tuple(sorted(self._dropped)),
            pending=tuple(sorted(self._pending_joins)),
        )

    def restart_worker(self, worker_id: int) -> None:
        """Replace a (self-spawned) worker's process with a fresh
        daemon; it re-dials and is admitted at the next quiesce."""
        if self._fleet is None:
            raise RuntimeError(
                "no self-spawned fleet: restart externally launched daemons "
                "from wherever they were started"
            )
        self._fleet.restart_worker(worker_id)

    def spawn_worker(self, worker_id: int | None = None) -> int:
        """Launch one additional (self-spawned) daemon; defaults to the
        next dense id. Returns the id it will register under."""
        if self._fleet is None:
            raise RuntimeError(
                "no self-spawned fleet: launch externally managed daemons "
                "from wherever the fleet is run"
            )
        wid = len(self.workers) if worker_id is None else int(worker_id)
        self._fleet.spawn_worker(wid)
        return wid

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.workers)

    def worker_pids(self) -> dict[int, int]:
        """PIDs of self-spawned workers (empty for external fleets)."""
        return self._fleet.pids() if self._fleet is not None else {}

    # ------------------------------------------------------------------
    # the pump: results, heartbeats, liveness, round deadlines
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """One wait-collect-bookkeep cycle. Guaranteed to return within
        ~``heartbeat_interval`` seconds, having delivered any ready
        replies and updated liveness/deadline state."""
        now_m = time.monotonic()
        if now_m - self._last_hb >= self.heartbeat_interval:
            self._send_heartbeats(now_m)
        for key, _ in self._sel.select(self._pump_timeout(now_m)):
            if key.data is None:  # the listener: a late joiner dialing in
                self._accept_pending()
                continue
            wid = key.data
            if wid in self._dead:
                continue
            try:
                kind, fields, arrays = read_frame(key.fileobj, self.wire)
            except (WireError, OSError, ConnectionError):
                self._mark_dead(wid)
                continue
            self._hb_pending[wid] = None
            if kind == "result":
                rid = int(fields["rid"])
                value = arrays[0] if fields.get("ok") and arrays else None
                target = self._handles.get(rid)
                if target is not None:
                    target._deliver(
                        wid, value, float(fields.get("compute_time", 0.0)),
                        fields.get("err"), fields.get("spans"),
                        fields.get("digest"),
                    )
            elif kind == "heartbeat_ack":
                # liveness needed no more than the _hb_pending reset
                # above; the ack of the *latest* probe additionally
                # updates the per-worker RTT gauge
                sent = self._hb_sent.get(wid)
                if sent is not None and fields.get("seq") == sent[0]:
                    self.wire.hb_rtt[wid] = max(0.0, time.monotonic() - sent[1])
        now_m = time.monotonic()
        for wid, since in list(self._hb_pending.items()):
            if (
                wid not in self._dead
                and since is not None
                and now_m - since > self.heartbeat_timeout
            ):
                self._mark_dead(wid)
        for handle in list(self._handles.values()):
            if handle._deadline is not None and now_m > handle._deadline:
                handle._expire()

    def _pump_timeout(self, now_m: float) -> float:
        wake = now_m + self.heartbeat_interval
        wake = min(wake, self._last_hb + self.heartbeat_interval)
        for wid, since in self._hb_pending.items():
            if wid not in self._dead and since is not None:
                wake = min(wake, since + self.heartbeat_timeout)
        for handle in self._handles.values():
            if handle._deadline is not None and handle._outstanding:
                wake = min(wake, handle._deadline)
        return max(0.0, min(wake - now_m, self.heartbeat_interval))

    def _send_heartbeats(self, now_m: float) -> None:
        self._hb_seq += 1
        self._last_hb = now_m
        for wid in list(self._conns):
            if wid in self._dead:
                continue
            try:
                send_frame(
                    self._conns[wid], "heartbeat", {"seq": self._hb_seq},
                    counters=self.wire,
                )
            except (OSError, ConnectionError):
                self._mark_dead(wid)
                continue
            self._hb_sent[wid] = (self._hb_seq, now_m)
            if self._hb_pending.get(wid) is None:
                self._hb_pending[wid] = now_m

    def _mark_dead(self, wid: int) -> None:
        """A worker's socket failed or its heartbeats lapsed: record it
        permanently silent; in-flight rounds observe a straggler that
        never arrives, not a hang."""
        if wid in self._dead:
            return
        self._dead.add(wid)
        self._hb_pending[wid] = None
        self._close_conn(wid)
        if wid not in self._dropped:
            self._note_membership("dead", wid)
        for handle in list(self._handles.values()):
            handle._worker_died(wid)

    def _close_conn(self, wid: int) -> None:
        conn = self._conns.pop(wid, None)
        if conn is None:
            return
        try:
            self._sel.unregister(conn)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def _send_cancel(self, rid: int, outstanding: set[int]) -> None:
        for wid in list(outstanding):
            conn = self._conns.get(wid)
            if conn is None or wid in self._dead:
                continue
            try:
                send_frame(conn, "cancel", {"rid": rid}, counters=self.wire)
            except (OSError, ConnectionError):
                self._mark_dead(wid)

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def distribute(self, name: str, shares: np.ndarray, participants=None) -> float:
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        if len(participants) > shares.shape[0]:
            raise ValueError("fewer shares than participants")
        t0 = time.perf_counter()
        for slot, wid in enumerate(participants):
            if wid in self._dead:
                continue  # permanently silent; shares would be lost
            try:
                send_frame(
                    self._conns[wid], "store", {"name": name},
                    (np.asarray(shares[slot]),), counters=self.wire,
                )
            except (OSError, ConnectionError):
                self._mark_dead(wid)
        return time.perf_counter() - t0

    def dispatch_round(
        self, job: RoundJob, participants: Sequence[int] | None = None
    ) -> TcpRoundHandle:
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        self._rid += 1
        rid = self._rid
        live = [wid for wid in participants if wid not in self._dead]

        t_b0 = time.perf_counter()
        fields = {
            "rid": rid,
            "op": job.op,
            "payload_key": job.payload_key,
            "rhs_key": job.rhs_key,
        }
        if self.obs is not None:
            # traced rounds ask the daemons for their own sub-spans;
            # untraced frames are byte-identical to pre-obs builds
            fields["trace"] = True
            self.obs.on_dispatch("tcp", job, len(participants))
        if self.attest:
            # audited rounds ask the daemons to countersign results
            fields["attest"] = True
        arrays = (job.operand,) if job.operand is not None else ()
        parts = encode_frame("round", fields, arrays)  # serialize once
        for wid in live:
            try:
                send_parts(self._conns[wid], parts, counters=self.wire)
            except (OSError, ConnectionError):
                self._mark_dead(wid)
        self._last_broadcast_time = time.perf_counter() - t_b0
        deadline = (
            time.monotonic() + self.round_timeout
            if self.round_timeout is not None
            else None
        )
        return TcpRoundHandle(self, rid, participants, deadline)

    # ------------------------------------------------------------------
    def drop_workers(self, worker_ids: Sequence[int]) -> None:
        """Disconnect dropped workers for real: ship ``shutdown`` and
        close the socket — the dynamic-coding path releases live
        connections, and a re-connect is a fresh registration."""
        fresh = [int(w) for w in worker_ids if int(w) not in self._dropped]
        super().drop_workers(fresh)
        for wid in fresh:
            if wid not in self._dead:
                self._shutdown_worker(wid)
            for handle in list(self._handles.values()):
                handle._worker_died(wid)

    def _shutdown_worker(self, wid: int) -> None:
        conn = self._conns.get(wid)
        if conn is not None:
            try:
                send_frame(conn, "shutdown", {})
            except (OSError, ConnectionError):
                pass
        self._close_conn(wid)
        if self._fleet is not None:
            proc = self._fleet.procs.get(wid)
            if proc is not None:
                try:
                    if self._fleet.mode == "fork":
                        proc.join(0.5)
                        if proc.is_alive():
                            proc.terminate()
                    else:
                        proc.wait(0.5)
                except Exception:  # pragma: no cover - reaping best-effort
                    pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for wid in list(self._conns):
            if wid not in self._dead and wid not in self._dropped:
                self._shutdown_worker(wid)
        for wid in list(self._conns):
            self._close_conn(wid)
        for conn in self._pending_joins.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._pending_joins.clear()
        self._sel.close()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if self._fleet is not None:
            self._fleet.terminate()
