"""Worker daemon entrypoint: ``python -m repro.runtime.net.worker``.

Starts one :class:`~repro.runtime.net.worker_server.WorkerServer` that
dials the master and serves rounds until shut down. On a real
deployment you run one of these per host::

    python -m repro.runtime.net.worker --host MASTER --port 9042 --worker-id 3

Field modulus, straggler factor and behaviour normally arrive from the
master's ``config`` frame (so every backend runs the same fleet
description); the injection flags below *override* the master's config
— they exist so tests can plant a straggler or a Byzantine worker at
the worker side, without the master's cooperation.
"""

from __future__ import annotations

import argparse

from repro.api.config import BEHAVIOR_KINDS, WorkerSpec
from repro.runtime.net.worker_server import WorkerServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1", help="master address")
    parser.add_argument("--port", type=int, required=True, help="master port")
    parser.add_argument("--worker-id", type=int, required=True, help="stable worker id")
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the master before giving up",
    )
    inject = parser.add_argument_group(
        "fault injection (overrides the master's config)"
    )
    inject.add_argument(
        "--straggler-factor", type=float, default=None, help="compute slowdown (>= 1)"
    )
    inject.add_argument(
        "--behavior", choices=BEHAVIOR_KINDS, default=None, help="Byzantine behaviour"
    )
    inject.add_argument(
        "--attack-value", type=int, default=1, help="constant/reverse attack parameter"
    )
    inject.add_argument(
        "--probability", type=float, default=1.0, help="per-round attack probability"
    )
    inject.add_argument(
        "--straggle-scale", type=float, default=None, help="seconds per factor-above-one"
    )
    args = parser.parse_args(argv)

    behavior = None
    if args.behavior is not None:
        behavior = WorkerSpec(
            straggler_factor=max(1.0, args.straggler_factor or 1.0),
            behavior=args.behavior,
            attack_value=args.attack_value,
            probability=args.probability,
        ).build_behavior()
    server = WorkerServer(
        args.host,
        args.port,
        args.worker_id,
        straggler_factor=args.straggler_factor,
        behavior=behavior,
        straggle_scale=args.straggle_scale,
        connect_timeout=args.connect_timeout,
    )
    server.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
