"""Real thread-pool execution backend.

The simulator in :mod:`repro.runtime.cluster` is what the experiments
use (deterministic, calibrated timing). This backend runs the *same*
worker computations on an actual ``ThreadPoolExecutor`` with injected
sleeps for stragglers, so the masters can demonstrate genuine
wall-clock speedups on one machine. NumPy releases the GIL inside its
inner loops, so worker matvecs genuinely overlap.

:class:`ThreadedCluster` implements the
:class:`~repro.runtime.backend.Backend` protocol. Early stopping is
real here: when a master cancels a round (recovery threshold met), a
shared cancellation event wakes any straggler still in its injected
sleep and aborts workers that have not started computing, so the round
ends without paying the tail latency the master did not need.

Concurrent rounds multiplex naturally: each dispatch submits one task
per participant to the shared pool and each handle owns its private
completion queue, so the pipelined scheduler can hold several rounds
in flight — a later round's tasks simply queue behind the earlier
round's on the pool's worker threads.

A worker whose computation raises is recorded as never having arrived
(crash-stop — the same degradation a real node failure produces); the
exception is kept on the handle's ``worker_errors`` and re-raised only
when *no* worker produced a result, which distinguishes a malformed
job from an individual node failure. The simulator, by contrast,
propagates worker exceptions immediately — exact execution is the
debugging surface.

Not used by the benchmark harness for the paper figures: wall-clock
measurements of a many-thread pool are machine-dependent noise, which
is exactly what the discrete-event clock removes.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from queue import SimpleQueue
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.backend import (
    Arrival,
    RoundHandle,
    RoundJob,
    RoundResult,
    WallClockBackend,
    run_job_compute,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.worker import SimWorker

__all__ = ["ThreadedArrival", "ThreadedCluster", "ThreadedRoundHandle"]


@dataclass(frozen=True)
class ThreadedArrival:
    """Result of one worker under real execution (legacy round API)."""

    worker_id: int
    value: Any
    t_arrival: float  # seconds since round start (wall clock)
    truly_byzantine: bool


class ThreadedRoundHandle(RoundHandle):
    """One in-flight thread-pool round.

    Worker tasks push their :class:`Arrival` onto an internal queue as
    they finish; iteration pops in completion order. ``cancel`` sets an
    event that (a) wakes stragglers out of their injected sleep and
    (b) makes not-yet-started workers return without computing, so
    :meth:`result` never waits on tail latency the master gave up on.
    """

    def __init__(self, cluster: "ThreadedCluster", job: RoundJob, participants: list[int]):
        self._cluster = cluster
        self._participants = participants
        self._cancelled = threading.Event()
        self._queue: SimpleQueue[Arrival] = SimpleQueue()
        self._received: dict[int, Arrival] = {}
        #: worker_id -> exception raised by its computation (crash-stop)
        self.worker_errors: dict[int, BaseException] = {}
        self.t_start = cluster.now
        # operands live in shared memory already — the "broadcast" is
        # handing the job object to the pool
        self.broadcast_time = 0.0
        self._futures = [
            cluster._pool.submit(self._run_one, cluster._by_id[wid], job)
            for wid in participants
        ]

    # ------------------------------------------------------------------
    def _run_one(self, w: SimWorker, job: RoundJob) -> None:
        cluster = self._cluster
        factor = getattr(w.profile, "factor", 1.0)
        if factor > 1.0:
            # interruptible straggler sleep: returns True when cancelled
            if self._cancelled.wait((factor - 1.0) * cluster.straggle_scale):
                self._queue.put(self._missing(w))
                return
        if self._cancelled.is_set():
            self._queue.put(self._missing(w))
            return
        try:
            t_c0 = time.perf_counter()
            value = w.execute(
                lambda p, _j=job: run_job_compute(cluster.field, p, _j),
                cluster.field,
                cluster._worker_rngs[w.worker_id],
            )
            ct = time.perf_counter() - t_c0
        except BaseException as exc:  # noqa: BLE001 - worker crash-stop
            self.worker_errors[w.worker_id] = exc
            self._queue.put(self._missing(w))
            return
        if value is None:  # silent failure: never transmits
            self._queue.put(self._missing(w))
            return
        self._queue.put(
            Arrival(
                worker_id=w.worker_id,
                value=value,
                t_arrival=cluster.now,
                compute_time=ct,
                comm_time=0.0,
                truly_byzantine=w.is_byzantine,
            )
        )

    def _missing(self, w: SimWorker) -> Arrival:
        return self._cluster._missing_arrival(w.worker_id, w.is_byzantine)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Arrival]:
        any_finite = False
        while len(self._received) < len(self._participants):
            if self._cancelled.is_set():
                return
            a = self._queue.get()
            self._received[a.worker_id] = a
            if math.isfinite(a.t_arrival):
                any_finite = True
                yield a
        if not any_finite and self.worker_errors:
            # every worker failed: a malformed job, not node failures
            wid, exc = next(iter(self.worker_errors.items()))
            raise RuntimeError(
                f"all {len(self._participants)} workers failed this round "
                f"(first error, worker {wid}: {exc!r})"
            ) from exc

    def cancel(self) -> None:
        self._cancelled.set()

    def result(self) -> RoundResult:
        # After cancel the sleeps are interrupted, so this join is
        # bounded by one in-flight block computation, not by stragglers.
        futures_wait(self._futures)
        while len(self._received) < len(self._participants):
            a = self._queue.get()
            self._received[a.worker_id] = a
        ordered = sorted(self._received.values(), key=lambda a: a.t_arrival)
        return RoundResult(
            t_start=self.t_start,
            broadcast_time=self.broadcast_time,
            arrivals=tuple(ordered),
        )


class ThreadedCluster(WallClockBackend):
    """Thread-pool analogue of :class:`~repro.runtime.cluster.SimCluster`.

    Straggling is induced by ``time.sleep`` proportional to the
    worker's deterministic latency factor, scaled by
    ``straggle_scale`` seconds per unit of factor-above-one.
    """

    def __init__(
        self,
        field: PrimeField,
        workers: Sequence[SimWorker],
        rng: np.random.Generator | None = None,
        straggle_scale: float = 0.05,
        max_threads: int | None = None,
        cost_model: CostModel | None = None,
    ):
        self.field = field
        self.workers = list(workers)
        self.rng = rng or np.random.default_rng(0)
        self.straggle_scale = straggle_scale
        self.cost_model = cost_model or CostModel()
        self._by_id = {w.worker_id: w for w in self.workers}
        # one generator per worker for its whole lifetime, so
        # per-round-random behaviours (IntermittentAttack) actually
        # vary round to round — matching the process backend
        self._worker_rngs = {
            w.worker_id: np.random.default_rng(w.worker_id) for w in self.workers
        }
        self._pool = ThreadPoolExecutor(max_workers=max_threads or len(self.workers))
        self._init_wall_clock()

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    def distribute(self, name: str, shares: np.ndarray, participants=None) -> float:
        """Install share ``i`` on participant ``i``; in-process the
        transfer is a reference store, so the returned cost is the
        (tiny) measured wall time."""
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        if len(participants) > shares.shape[0]:
            raise ValueError("fewer shares than participants")
        t0 = time.perf_counter()
        for slot, wid in enumerate(participants):
            self._by_id[wid].store(**{name: shares[slot]})
        return time.perf_counter() - t0

    def dispatch_round(
        self, job: RoundJob, participants: Sequence[int] | None = None
    ) -> ThreadedRoundHandle:
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        if self.obs is not None:
            self.obs.on_dispatch("threaded", job, len(participants))
        return ThreadedRoundHandle(self, job, participants)

    # ------------------------------------------------------------------
    # legacy callable-based API (predates the Backend protocol)
    # ------------------------------------------------------------------
    def _run_one(
        self, w: SimWorker, compute: Callable[[dict], np.ndarray], t0: float
    ) -> ThreadedArrival:
        factor = getattr(w.profile, "factor", 1.0)
        if factor > 1.0:
            time.sleep((factor - 1.0) * self.straggle_scale)
        value = w.execute(compute, self.field, self._worker_rngs[w.worker_id])
        if value is None:
            return ThreadedArrival(w.worker_id, None, math.inf, w.is_byzantine)
        return ThreadedArrival(
            w.worker_id, value, time.perf_counter() - t0, w.is_byzantine
        )

    def run_round(
        self,
        compute: Callable[[dict], np.ndarray],
        participants: Sequence[int] | None = None,
    ) -> list[ThreadedArrival]:
        """Run all workers concurrently; return arrivals sorted by
        completion time (waits for everyone — no early stopping)."""
        ids = list(participants) if participants is not None else [
            w.worker_id for w in self.workers
        ]
        t0 = time.perf_counter()
        futures = [self._pool.submit(self._run_one, self._by_id[i], compute, t0) for i in ids]
        results = [f.result() for f in futures]
        return sorted(results, key=lambda a: a.t_arrival)
