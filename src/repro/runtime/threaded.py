"""Real thread-pool execution backend.

The simulator in :mod:`repro.runtime.cluster` is what the experiments
use (deterministic, calibrated timing). This backend runs the *same*
worker computations on an actual ``ThreadPoolExecutor`` with injected
sleeps for stragglers, so the examples can demonstrate genuine
wall-clock speedups on one machine. NumPy releases the GIL inside its
inner loops, so worker matvecs genuinely overlap.

Not used by the benchmark harness: wall-clock measurements of a
many-thread pool are machine-dependent noise, which is exactly what the
discrete-event clock removes.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.worker import SimWorker

__all__ = ["ThreadedArrival", "ThreadedCluster"]


@dataclass(frozen=True)
class ThreadedArrival:
    """Result of one worker under real execution."""

    worker_id: int
    value: Any
    t_arrival: float  # seconds since round start (wall clock)
    truly_byzantine: bool


class ThreadedCluster:
    """Thread-pool analogue of :class:`~repro.runtime.cluster.SimCluster`.

    Straggling is induced by ``time.sleep`` proportional to the
    worker's deterministic latency factor, scaled by
    ``straggle_scale`` seconds per unit of factor-above-one.
    """

    def __init__(
        self,
        field: PrimeField,
        workers: Sequence[SimWorker],
        rng: np.random.Generator | None = None,
        straggle_scale: float = 0.05,
        max_threads: int | None = None,
    ):
        self.field = field
        self.workers = list(workers)
        self.rng = rng or np.random.default_rng(0)
        self.straggle_scale = straggle_scale
        self._pool = ThreadPoolExecutor(max_workers=max_threads or len(self.workers))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    def _run_one(
        self, w: SimWorker, compute: Callable[[dict], np.ndarray], t0: float
    ) -> ThreadedArrival:
        factor = getattr(w.profile, "factor", 1.0)
        if factor > 1.0:
            time.sleep((factor - 1.0) * self.straggle_scale)
        value = w.execute(compute, self.field, np.random.default_rng(w.worker_id))
        if value is None:
            return ThreadedArrival(w.worker_id, None, math.inf, w.is_byzantine)
        return ThreadedArrival(
            w.worker_id, value, time.perf_counter() - t0, w.is_byzantine
        )

    def run_round(
        self,
        compute: Callable[[dict], np.ndarray],
        participants: Sequence[int] | None = None,
    ) -> list[ThreadedArrival]:
        """Run all workers concurrently; return arrivals sorted by
        completion time."""
        ids = list(participants) if participants is not None else [
            w.worker_id for w in self.workers
        ]
        by_id = {w.worker_id: w for w in self.workers}
        t0 = time.perf_counter()
        futures = [self._pool.submit(self._run_one, by_id[i], compute, t0) for i in ids]
        results = [f.result() for f in futures]
        return sorted(results, key=lambda a: a.t_arrival)
