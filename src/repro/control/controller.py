"""The fleet controller: decisions in, membership changes out.

:class:`FleetController` is the actuation half of the control plane.
Per control window it feeds the window's
:class:`~repro.control.signals.WindowSignals` to its
:class:`~repro.control.autoscaler.Autoscaler` and executes the
returned decision against the live session:

* ``scale_up`` — revive dead/dropped worker ids first (their daemon
  processes are gone; ``restart_worker`` launches replacements), then
  spawn brand-new ids beyond the roster; wait for the daemons to dial
  in, then run ``session.end_iteration()`` so the quiesce point
  admits them and re-codes over the grown fleet.
* ``scale_down`` — release the highest-id live workers through
  ``session.release_workers`` (re-deriving K for the smaller fleet).
* ``recode`` — just ``session.end_iteration()``: admit pending
  joiners, evict the heartbeat-dead, re-code if K changed.
* ``hold`` — nothing.

The controller only ever acts at the caller's window boundary (the
gateway invokes :meth:`on_window` from its event loop between
dispatches), so every membership change goes through the session's
drained quiesce point and never lands mid-round.
"""

from __future__ import annotations

import time
from typing import Any

from repro.control.autoscaler import Autoscaler, ScaleDecision
from repro.control.signals import WindowSignals
from repro.core.results import AdaptationOutcome

__all__ = ["FleetController"]


class FleetController:
    """Actuate autoscaling decisions against a live elastic session.

    Parameters
    ----------
    session:
        The :class:`~repro.api.session.Session` to control. Scaling
        actions need an elastic backend (the socket clusters) exposing
        ``restart_worker``/``spawn_worker``; ``recode`` works on any
        backend (it is just an ``end_iteration``).
    autoscaler:
        The decision policy (default-configured
        :class:`~repro.control.autoscaler.Autoscaler` if omitted).
    spawn_wait:
        Wall-clock seconds to wait for freshly spawned daemons to dial
        in before reconciling anyway (a late daemon is simply admitted
        at the next window).
    poll_interval:
        Membership polling cadence while waiting.
    """

    def __init__(
        self,
        session: Any,
        autoscaler: Autoscaler | None = None,
        *,
        spawn_wait: float = 10.0,
        poll_interval: float = 0.05,
    ) -> None:
        self.session = session
        self.autoscaler = autoscaler or Autoscaler()
        self.spawn_wait = spawn_wait
        self.poll_interval = poll_interval
        #: (decision, outcome-or-None) per window, in order
        self.actions: list[tuple[ScaleDecision, AdaptationOutcome | None]] = []

    # ------------------------------------------------------------------
    def on_window(self, signals: WindowSignals) -> ScaleDecision:
        """Feed one window to the policy and actuate its decision."""
        decision = self.autoscaler.observe(signals)
        outcome: AdaptationOutcome | None = None
        if decision.action == "scale_up":
            outcome = self._scale_up(decision.delta)
        elif decision.action == "scale_down":
            outcome = self._scale_down(decision.delta)
        elif decision.action == "recode":
            outcome = self.session.end_iteration()
        self.actions.append((decision, outcome))
        return decision

    # ------------------------------------------------------------------
    def _scale_up(self, delta: int) -> AdaptationOutcome:
        backend = self.session.backend
        if not hasattr(backend, "spawn_worker"):
            raise RuntimeError(
                f"backend {type(backend).__name__} cannot spawn workers; "
                "scale-up needs an elastic socket backend"
            )
        view = backend.membership()
        pending = set(view.pending)
        targets: list[int] = []
        # heal holes first: dead/dropped ids whose daemons are gone
        for wid in (*view.dead, *view.dropped):
            if len(targets) >= delta:
                break
            if wid in pending:
                continue  # already re-dialed on its own
            backend.restart_worker(wid)
            targets.append(wid)
        # then genuinely new capacity beyond the roster
        next_id = view.n
        while len(targets) < delta:
            backend.spawn_worker(next_id)
            targets.append(next_id)
            next_id += 1
        self._await_dialed(set(targets))
        return self.session.end_iteration()

    def _await_dialed(self, targets: set[int]) -> None:
        """Wait (bounded) until every target is pending or live."""
        deadline = time.monotonic() + self.spawn_wait
        while time.monotonic() < deadline:
            view = self.session.backend.membership()
            if targets <= set(view.pending) | set(view.live):
                return
            time.sleep(self.poll_interval)

    def _scale_down(self, delta: int) -> AdaptationOutcome:
        view = self.session.backend.membership()
        live = sorted(view.live)
        victims = live[-delta:] if delta < len(live) else live[1:]
        return self.session.release_workers(victims)
