"""Per-window control signals: what the autoscaler policy sees.

One :class:`WindowSignals` summarizes a fixed-length slice of a
gateway run — the serving-quality side (completions, sheds, queue
depth, SLO attainment, tail latency, deadline slack) joined with the
fleet side (live/pending/dead workers, straggler and Byzantine
observations from the session's adaptation telemetry). The gateway
builds one per ``control_interval`` (see
:class:`~repro.serve.gateway.Gateway`); the policy never reaches into
the gateway or session itself.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any

__all__ = ["WindowSignals"]


@dataclass(frozen=True)
class WindowSignals:
    """One control window's observations (all trace-clock seconds).

    Attributes
    ----------
    window_index:
        0-based window ordinal within the run.
    t_start, t_end:
        The window's bounds on the trace clock.
    completed:
        Requests that reached a terminal outcome this window.
    served, shed:
        Split of ``completed`` into successes and sheds.
    queue_depth:
        Requests waiting in the admission queues at window close.
    slo_attainment:
        Fraction of this window's deadline-carrying completions that
        met their deadline (1.0 when none carried one).
    p99_latency:
        p99 latency of this window's served requests (NaN if none).
    deadline_slack:
        Minimum ``deadline - completion`` over this window's served
        deadline-carrying requests — how close the service is sailing
        to the SLO cliff (NaN if none; negative = misses).
    live_workers, pending_workers, dead_workers:
        Fleet roster at window close (pending = handshaken joiners
        awaiting admission).
    observed_stragglers, detected_byzantine:
        Distinct worker counts from the session's adaptation/round
        telemetry since the previous window.
    """

    window_index: int
    t_start: float
    t_end: float
    completed: int
    served: int
    shed: int
    queue_depth: int
    slo_attainment: float
    p99_latency: float
    deadline_slack: float
    live_workers: int
    pending_workers: int
    dead_workers: int
    observed_stragglers: int = 0
    detected_byzantine: int = 0

    @property
    def shed_rate(self) -> float:
        """Sheds as a fraction of this window's completions."""
        if not self.completed:
            return 0.0
        return self.shed / self.completed

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (non-finite floats become ``None``)."""
        out = asdict(self)
        for key, value in out.items():
            if isinstance(value, float) and not math.isfinite(value):
                out[key] = None
        out["shed_rate"] = self.shed_rate
        return out
