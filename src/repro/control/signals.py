"""Per-window control signals: what the autoscaler policy sees.

One :class:`WindowSignals` summarizes a fixed-length slice of a
gateway run — the serving-quality side (completions, sheds, queue
depth, SLO attainment, tail latency, deadline slack) joined with the
fleet side (live/pending/dead workers, straggler and Byzantine
observations from the session's adaptation telemetry). The gateway
builds one per ``control_interval`` (see
:class:`~repro.serve.gateway.Gateway`); the policy never reaches into
the gateway or session itself.

When the session runs with observability enabled, the gateway's
request accounting lives in the unified
:class:`~repro.obs.metrics.MetricsRegistry` instead of a private list:
:func:`record_outcome` feeds one terminal outcome into the gateway
counters/histograms, and :meth:`WindowSignals.from_registry` closes a
window from counter *deltas* (against a caller-owned marks dict) plus
window-exact histogram drains — producing bit-identical numbers to the
legacy fresh-outcomes computation, which remains the obs-off path.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, MutableMapping

import numpy as np

__all__ = [
    "WindowSignals",
    "outcome_recorder",
    "record_outcome",
    "set_window_tracking",
]

#: metric names the gateway accounting lives under (obs-enabled runs)
GATEWAY_REQUESTS = "gateway_requests_total"
GATEWAY_SLO = "gateway_slo_requests_total"
GATEWAY_LATENCY = "gateway_request_latency_seconds"
GATEWAY_SLACK = "gateway_deadline_slack_seconds"


def _gateway_handles(registry: Any) -> tuple[Any, Any, Any, Any]:
    """Get-or-create the four gateway metrics once per registry; the
    per-request path then skips the registry's name lookup + lock."""
    handles = getattr(registry, "_gateway_handles", None)
    if handles is None:
        handles = (
            registry.counter(
                GATEWAY_REQUESTS, "terminal request outcomes by status"
            ),
            registry.counter(
                GATEWAY_SLO, "deadline-carrying completions by SLO verdict"
            ),
            registry.histogram(
                GATEWAY_LATENCY,
                "end-to-end served latency (arrival to decode)",
                track_window=True,
            ),
            registry.histogram(
                GATEWAY_SLACK,
                "deadline minus completion for served SLO requests",
                track_window=True,
            ),
        )
        registry._gateway_handles = handles
    return handles


#: canonical label-key memos for the per-request fast path (label sets
#: are low-cardinality: statuses x tenants x families)
_REQ_KEYS: dict[tuple, tuple] = {}
_TENANT_KEYS: dict[str, tuple] = {}
_MET_KEYS = {
    True: (("met", "True"),),
    False: (("met", "False"),),
    None: (("met", "None"),),
}
_NO_LABELS: tuple = ()


def set_window_tracking(registry: Any, on: bool) -> None:
    """Arm/disarm the raw-value windows behind the gateway latency and
    slack histograms. A gateway without a control loop never drains
    them, so it disarms at startup — bucket counts still accumulate."""
    _, _, latency, slack = _gateway_handles(registry)
    latency.set_window_tracking(on)
    slack.set_window_tracking(on)


def outcome_recorder(registry: Any) -> Any:
    """Bind the per-request outcome fast path once for ``registry``:
    returns (and caches on the registry) a ``record(outcome)``
    callable closed over the four gateway metric handles and the
    label-key memos — the per-call cost is the metric bumps alone."""
    rec = getattr(registry, "_outcome_recorder", None)
    if rec is not None:
        return rec
    requests, slo, latency, slack = _gateway_handles(registry)

    def record(
        outcome: Any,
        _req_keys=_REQ_KEYS,
        _tenant_keys=_TENANT_KEYS,
        _met_keys=_MET_KEYS,
        _no_labels=_NO_LABELS,
        _isfinite=math.isfinite,
    ) -> None:
        triple = (outcome.status, outcome.tenant, outcome.family)
        key = _req_keys.get(triple)
        if key is None:
            key = _req_keys[triple] = tuple(
                sorted(zip(("status", "tenant", "family"), map(str, triple)))
            )
        requests.inc_key(key)
        has_deadline = _isfinite(outcome.deadline)
        if has_deadline:
            slo.inc_key(_met_keys[outcome.slo_met])
        if outcome.status == "served" and outcome.latency is not None:
            tenant = outcome.tenant
            tkey = _tenant_keys.get(tenant)
            if tkey is None:
                tkey = _tenant_keys[tenant] = (("tenant", str(tenant)),)
            latency.observe_key(tkey, outcome.latency)
            if has_deadline and outcome.completed is not None:
                slack.observe_key(
                    _no_labels, outcome.deadline - outcome.completed
                )

    registry._outcome_recorder = record
    return record


def record_outcome(registry: Any, outcome: Any) -> None:
    """Feed one terminal request outcome into the metrics registry.

    ``outcome`` is duck-typed (any object with the
    :class:`~repro.serve.gateway.RequestOutcome` fields) so the
    control layer stays import-independent of the serving layer.
    """
    outcome_recorder(registry)(outcome)


def _counter_deltas(
    registry: Any, name: str, marks: MutableMapping[Any, float]
) -> dict[tuple, float]:
    """Per-series increase of a counter since the previous call with
    the same ``marks`` dict; advances the marks."""
    metric = registry.get(name)
    out: dict[tuple, float] = {}
    if metric is None:
        return out
    for key, value in metric.series():
        prev = marks.get((name, key), 0.0)
        if value != prev:
            out[key] = value - prev
        marks[(name, key)] = value
    return out


@dataclass(frozen=True)
class WindowSignals:
    """One control window's observations (all trace-clock seconds).

    Attributes
    ----------
    window_index:
        0-based window ordinal within the run.
    t_start, t_end:
        The window's bounds on the trace clock.
    completed:
        Requests that reached a terminal outcome this window.
    served, shed:
        Split of ``completed`` into successes and sheds.
    queue_depth:
        Requests waiting in the admission queues at window close.
    slo_attainment:
        Fraction of this window's deadline-carrying completions that
        met their deadline (1.0 when none carried one).
    p99_latency:
        p99 latency of this window's served requests (NaN if none).
    deadline_slack:
        Minimum ``deadline - completion`` over this window's served
        deadline-carrying requests — how close the service is sailing
        to the SLO cliff (NaN if none; negative = misses).
    live_workers, pending_workers, dead_workers:
        Fleet roster at window close (pending = handshaken joiners
        awaiting admission).
    observed_stragglers, detected_byzantine:
        Distinct worker counts from the session's adaptation/round
        telemetry since the previous window.
    """

    window_index: int
    t_start: float
    t_end: float
    completed: int
    served: int
    shed: int
    queue_depth: int
    slo_attainment: float
    p99_latency: float
    deadline_slack: float
    live_workers: int
    pending_workers: int
    dead_workers: int
    observed_stragglers: int = 0
    detected_byzantine: int = 0

    @classmethod
    def from_registry(
        cls,
        registry: Any,
        marks: MutableMapping[Any, float],
        *,
        window_index: int,
        t_start: float,
        t_end: float,
        queue_depth: int,
        live_workers: int,
        pending_workers: int,
        dead_workers: int,
        observed_stragglers: int = 0,
        detected_byzantine: int = 0,
    ) -> "WindowSignals":
        """Close one control window from the metrics registry.

        Completion counts come from :data:`GATEWAY_REQUESTS` /
        :data:`GATEWAY_SLO` counter deltas against ``marks`` (a
        caller-owned dict, one per gateway run); the tail statistics
        come from draining the ``track_window`` histograms, so p99 and
        slack are computed over the window's *raw* values — bit-equal
        to the legacy per-window list, not bucket-approximated.
        """
        completed = served = 0
        for key, delta in _counter_deltas(registry, GATEWAY_REQUESTS, marks).items():
            completed += int(delta)
            if dict(key).get("status") == "served":
                served += int(delta)
        met = with_slo = 0
        for key, delta in _counter_deltas(registry, GATEWAY_SLO, marks).items():
            with_slo += int(delta)
            if dict(key).get("met") == "True":
                met += int(delta)
        lat_hist = registry.get(GATEWAY_LATENCY)
        lats = lat_hist.drain_window() if lat_hist is not None else []
        slack_hist = registry.get(GATEWAY_SLACK)
        slacks = slack_hist.drain_window() if slack_hist is not None else []
        return cls(
            window_index=window_index,
            t_start=t_start,
            t_end=t_end,
            completed=completed,
            served=served,
            shed=completed - served,
            queue_depth=queue_depth,
            slo_attainment=met / with_slo if with_slo else 1.0,
            p99_latency=float(np.percentile(lats, 99.0)) if lats else math.nan,
            deadline_slack=min(slacks) if slacks else math.nan,
            live_workers=live_workers,
            pending_workers=pending_workers,
            dead_workers=dead_workers,
            observed_stragglers=observed_stragglers,
            detected_byzantine=detected_byzantine,
        )

    @property
    def shed_rate(self) -> float:
        """Sheds as a fraction of this window's completions."""
        if not self.completed:
            return 0.0
        return self.shed / self.completed

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (non-finite floats become ``None``)."""
        out = asdict(self)
        for key, value in out.items():
            if isinstance(value, float) and not math.isfinite(value):
                out[key] = None
        out["shed_rate"] = self.shed_rate
        return out
