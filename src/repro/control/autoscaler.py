"""The SLO-driven autoscaling policy (pure decision logic).

:class:`Autoscaler` consumes one
:class:`~repro.control.signals.WindowSignals` per control window and
emits one :class:`ScaleDecision`. It holds no handles to the fleet —
actuation lives in :class:`~repro.control.controller.FleetController`
— so the policy is deterministic and unit-testable on synthetic
signal streams.

Why hysteresis and cooldowns
----------------------------
A coded fleet pays a real price for every membership change: a
re-code re-ships shares to the whole roster and (for a scale-up) the
new capacity only helps after the next quiesce point. Reacting to one
bad window would thrash — a single straggler-heavy window triggers a
scale-up whose re-code itself causes the next SLO dip, which triggers
another. So breaches must *persist* (``scale_up_after`` consecutive
windows) before scaling up, calm must persist much longer
(``scale_down_after``) before scaling down, and every scaling action
opens a ``cooldown_windows``-long refractory period in which only
re-code reconciliation (admitting joiners, evicting the dead — cheap
and necessary) is allowed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.signals import WindowSignals

__all__ = ["Autoscaler", "AutoscalerConfig", "ScaleDecision"]

#: decision kinds
HOLD = "hold"
SCALE_UP = "scale_up"
SCALE_DOWN = "scale_down"
RECODE = "recode"


@dataclass(frozen=True)
class ScaleDecision:
    """One control-window verdict.

    ``action`` is ``"hold" | "scale_up" | "scale_down" | "recode"``;
    ``delta`` is the worker count to add/remove (0 for hold/recode);
    ``reason`` is a human-readable audit line.
    """

    action: str = HOLD
    delta: int = 0
    reason: str = ""


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs.

    Attributes
    ----------
    slo_target:
        Window SLO attainment below this is a breach.
    queue_high:
        Queue depth above this at window close is a breach.
    shed_high:
        Window shed rate above this is a breach.
    scale_up_after:
        Consecutive breach windows before scaling up.
    scale_down_after:
        Consecutive calm windows before scaling down (should be well
        above ``scale_up_after`` — adding capacity late is worse than
        holding spare capacity briefly).
    cooldown_windows:
        Refractory windows after any scaling action.
    min_workers, max_workers:
        Live-fleet clamp.
    scale_step:
        Workers added/removed per action.
    """

    slo_target: float = 0.95
    queue_high: int = 16
    shed_high: float = 0.05
    scale_up_after: int = 2
    scale_down_after: int = 4
    cooldown_windows: int = 2
    min_workers: int = 1
    max_workers: int = 64
    scale_step: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.slo_target <= 1.0:
            raise ValueError(f"slo_target must be in (0, 1], got {self.slo_target}")
        if self.queue_high < 1:
            raise ValueError(f"queue_high must be >= 1, got {self.queue_high}")
        if not 0.0 <= self.shed_high <= 1.0:
            raise ValueError(f"shed_high must be in [0, 1], got {self.shed_high}")
        if self.scale_up_after < 1 or self.scale_down_after < 1:
            raise ValueError("scale_up_after/scale_down_after must be >= 1")
        if self.cooldown_windows < 0:
            raise ValueError(f"cooldown_windows must be >= 0, got {self.cooldown_windows}")
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}"
            )
        if self.scale_step < 1:
            raise ValueError(f"scale_step must be >= 1, got {self.scale_step}")


class Autoscaler:
    """Streak-counting policy: signals in, :class:`ScaleDecision` out.

    Call :meth:`observe` once per window, in order. Every decision is
    also appended to :attr:`decisions` for audit.
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self.decisions: list[ScaleDecision] = []
        self._breach_streak = 0
        self._calm_streak = 0
        self._cooldown = 0

    # ------------------------------------------------------------------
    def _breaches(self, s: WindowSignals) -> list[str]:
        cfg = self.config
        out: list[str] = []
        if s.slo_attainment < cfg.slo_target:
            out.append(
                f"slo {s.slo_attainment:.0%} < target {cfg.slo_target:.0%}"
            )
        if s.queue_depth > cfg.queue_high:
            out.append(f"queue depth {s.queue_depth} > {cfg.queue_high}")
        if s.shed_rate > cfg.shed_high:
            out.append(f"shed rate {s.shed_rate:.0%} > {cfg.shed_high:.0%}")
        return out

    @staticmethod
    def _needs_recode(s: WindowSignals) -> bool:
        """Roster drift that a quiesce-point reconciliation fixes for
        free: joiners waiting for admission, or dead workers still in
        the coding roster."""
        return s.pending_workers > 0 or s.dead_workers > 0

    def observe(self, signals: WindowSignals) -> ScaleDecision:
        """Consume one window; return (and record) the decision."""
        cfg = self.config
        breaches = self._breaches(signals)
        if breaches:
            self._breach_streak += 1
            self._calm_streak = 0
        else:
            self._calm_streak += 1
            self._breach_streak = 0

        if self._cooldown > 0:
            self._cooldown -= 1
            if self._needs_recode(signals):
                decision = ScaleDecision(
                    RECODE,
                    reason=(
                        f"cooldown, but {signals.pending_workers} pending / "
                        f"{signals.dead_workers} dead workers need reconciling"
                    ),
                )
            else:
                decision = ScaleDecision(HOLD, reason="cooldown")
        elif breaches and self._breach_streak >= cfg.scale_up_after:
            if signals.live_workers >= cfg.max_workers:
                decision = ScaleDecision(
                    HOLD, reason="at max_workers under breach: " + "; ".join(breaches)
                )
            else:
                delta = min(cfg.scale_step, cfg.max_workers - signals.live_workers)
                decision = ScaleDecision(
                    SCALE_UP,
                    delta=delta,
                    reason=(
                        f"{self._breach_streak} breach windows: "
                        + "; ".join(breaches)
                    ),
                )
                self._cooldown = cfg.cooldown_windows
                self._breach_streak = 0
        elif (
            not breaches
            and self._calm_streak >= cfg.scale_down_after
            and signals.live_workers > cfg.min_workers
        ):
            delta = min(cfg.scale_step, signals.live_workers - cfg.min_workers)
            decision = ScaleDecision(
                SCALE_DOWN,
                delta=delta,
                reason=f"{self._calm_streak} calm windows",
            )
            self._cooldown = cfg.cooldown_windows
            self._calm_streak = 0
        elif self._needs_recode(signals):
            decision = ScaleDecision(
                RECODE,
                reason=(
                    f"{signals.pending_workers} pending / "
                    f"{signals.dead_workers} dead workers need reconciling"
                ),
            )
        else:
            decision = ScaleDecision(HOLD)
        self.decisions.append(decision)
        return decision
