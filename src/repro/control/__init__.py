"""The elastic fleet control plane.

This package closes the loop the paper's dynamic coding opens: the
serving gateway emits per-window quality signals
(:class:`~repro.control.signals.WindowSignals`), the
:class:`~repro.control.autoscaler.Autoscaler` policy turns them into
scale-up / scale-down / re-code decisions with hysteresis and
cooldowns, and the :class:`~repro.control.controller.FleetController`
actuates those decisions against a live session — spawning or
restarting worker daemons through the elastic socket backends and
re-coding the roster through ``Session.end_iteration`` /
``Session.release_workers``.
"""

from repro.control.autoscaler import Autoscaler, AutoscalerConfig, ScaleDecision
from repro.control.controller import FleetController
from repro.control.signals import WindowSignals

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "FleetController",
    "ScaleDecision",
    "WindowSignals",
]
