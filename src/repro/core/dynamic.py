"""Dynamic coding: the adaptation policy (Eqs. 16–19) and the offline
pre-encoded configuration cache.

The policy watches each iteration's observed failures and answers one
question: *can the current code still hide the observed stragglers, or
must the master shrink the code?* Formally (MDS mode, Eq. 16)::

    A_t = N_t - M_t - S_t - K_t - T_t

``A_t >= 0``: drop the detected Byzantine workers, keep ``K`` — their
shares were redundancy we can spare. ``A_t < 0``: the remaining fleet
cannot cover ``K_t`` any more; shrink to ``K_{t+1} = K_t + A_t``
(Eq. 17) and re-encode. Lagrange mode uses the degree-weighted slack of
Eq. 18 and shrinks by ``floor(A_t / deg f)`` (Eq. 19).

Re-encoding cost: the paper pre-generates encoded datasets and keys for
alternative configurations offline ("in the preprocessing phase before
the application starts", Sec. IV-B step 5), so the runtime cost of a
switch is *shipping the new shares*, which Fig. 5 shows as a one-time
~41 s bump. :class:`EncodingCache` reproduces exactly that split: CPU
work is done off the clock, transfer is charged on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.base import partition_rows
from repro.coding.lcc import LagrangeCode
from repro.core.base import pad_rows_to_multiple
from repro.ff.field import PrimeField
from repro.verify.freivalds import FreivaldsVerifier, MatvecKey

__all__ = ["AdaptivePolicy", "RecodeDecision", "EncodedConfig", "EncodingCache"]


@dataclass(frozen=True)
class RecodeDecision:
    """Outcome of one policy evaluation."""

    new_n: int
    new_k: int
    slack: int          # A_t, the adaptation margin
    reencode: bool      # True when K changed (shares must be re-shipped)


class AdaptivePolicy:
    """Implements Eqs. (16)–(19).

    Parameters
    ----------
    mode:
        ``"mds"`` for the linear/MDS accounting (Eqs. 16–17) or
        ``"lagrange"`` for the degree-weighted one (Eqs. 18–19).
    deg_f:
        Polynomial degree (only used in ``"lagrange"`` mode).
    min_k:
        Lower bound on the code dimension; shrinking below it raises.
    """

    def __init__(self, mode: str = "mds", deg_f: int = 1, min_k: int = 1):
        if mode not in ("mds", "lagrange"):
            raise ValueError(f"unknown policy mode {mode!r}")
        if deg_f < 1 or min_k < 1:
            raise ValueError("deg_f and min_k must be >= 1")
        self.mode = mode
        self.deg_f = deg_f
        self.min_k = min_k

    def slack(self, n_t: int, k_t: int, m_t: int, s_t: int, t_t: int = 0) -> int:
        """The adaptation margin ``A_t`` (Eq. 16 or Eq. 18)."""
        if min(n_t, k_t) < 1 or min(m_t, s_t, t_t) < 0:
            raise ValueError("invalid observation")
        if self.mode == "mds":
            return n_t - m_t - s_t - k_t - t_t
        return n_t - m_t - s_t - (k_t + t_t - 1) * self.deg_f

    def decide(
        self, n_t: int, k_t: int, m_t: int, s_t: int, t_t: int = 0
    ) -> RecodeDecision:
        """Next-iteration scheme ``(N_{t+1}, K_{t+1})`` (Eq. 17 / 19)."""
        a_t = self.slack(n_t, k_t, m_t, s_t, t_t)
        new_n = n_t - m_t
        if a_t >= 0:
            return RecodeDecision(new_n=new_n, new_k=k_t, slack=a_t, reencode=False)
        if self.mode == "mds":
            new_k = k_t + a_t
        else:
            new_k = k_t + a_t // self.deg_f  # floor division (Eq. 19)
        if new_k < self.min_k:
            raise ValueError(
                f"observed failures (M_t={m_t}, S_t={s_t}) leave no feasible "
                f"code: K would shrink to {new_k} < {self.min_k}"
            )
        return RecodeDecision(new_n=new_n, new_k=new_k, slack=a_t, reencode=True)


@dataclass(frozen=True)
class EncodedConfig:
    """One pre-encoded deployment: code, shares and verification keys
    for both matrix families at a given ``(n, k)``."""

    n: int
    k: int
    t: int
    code: LagrangeCode
    fwd_shares: np.ndarray          # (n, m_pad/k, d)
    bwd_shares: np.ndarray          # (n, d_pad/k, m_pad)
    fwd_keys: tuple[MatvecKey, ...]
    bwd_keys: tuple[MatvecKey, ...]
    m: int
    d: int
    m_pad: int
    d_pad: int

    def share_elements_per_worker(self) -> int:
        """Field elements each worker stores (drives re-ship cost)."""
        return int(self.fwd_shares[0].size + self.bwd_shares[0].size)


class EncodingCache:
    """Offline factory for :class:`EncodedConfig` objects, memoized by
    ``(n, k)``.

    All CPU work here (partitioning, Lagrange encoding, Freivalds key
    generation) is considered preprocessing and never charged to the
    simulated clock — matching the paper's amortization argument
    (Sec. VI: "the cost of encoding and key generation are one-time
    costs").
    """

    def __init__(
        self,
        field: PrimeField,
        x_field: np.ndarray,
        t: int = 0,
        probes: int = 1,
        rng: np.random.Generator | None = None,
        build_keys: bool = True,
    ):
        x_field = field.asarray(x_field)
        if x_field.ndim != 2:
            raise ValueError(f"dataset must be a matrix, got shape {x_field.shape}")
        self.field = field
        self.x = x_field
        self.t = int(t)
        self.probes = int(probes)
        self.rng = rng or np.random.default_rng(0)
        self.build_keys = build_keys
        self._configs: dict[tuple[int, int], EncodedConfig] = {}

    def get(self, n: int, k: int) -> EncodedConfig:
        key = (int(n), int(k))
        if key not in self._configs:
            self._configs[key] = self._build(*key)
        return self._configs[key]

    def prebuild(self, configs) -> None:
        """Warm the cache for a list of ``(n, k)`` pairs."""
        for n, k in configs:
            self.get(n, k)

    def _build(self, n: int, k: int) -> EncodedConfig:
        field = self.field
        m, d = self.x.shape
        x_pad = pad_rows_to_multiple(self.x, k)
        xt_pad = pad_rows_to_multiple(np.ascontiguousarray(x_pad.T), k)
        m_pad, d_pad = x_pad.shape[0], xt_pad.shape[0]

        code = LagrangeCode(field, n=n, k=k, t=self.t)
        fwd = code.encode(partition_rows(x_pad, k), self.rng if self.t else None)
        bwd = code.encode(partition_rows(xt_pad, k), self.rng if self.t else None)

        if self.build_keys:
            verifier = FreivaldsVerifier(field, probes=self.probes)
            fwd_keys = tuple(verifier.keygen(fwd, self.rng))
            bwd_keys = tuple(verifier.keygen(bwd, self.rng))
        else:
            fwd_keys = ()
            bwd_keys = ()

        return EncodedConfig(
            n=n,
            k=k,
            t=self.t,
            code=code,
            fwd_shares=fwd,
            bwd_shares=bwd,
            fwd_keys=fwd_keys,
            bwd_keys=bwd_keys,
            m=m,
            d=d,
            m_pad=m_pad,
            d_pad=d_pad,
        )
