"""The paper's contribution: AVCC and the baselines it is compared to.

All masters expose the same *coded matrix–vector service*:

* ``setup(x_field)`` — partition/pad/encode the dataset, ship shares,
  generate verification keys (where applicable);
* ``forward_round(w)`` — compute ``z = X·w`` distributedly;
* ``backward_round(e)`` — compute ``g = X^T·e`` distributedly;
* ``end_iteration()`` — bookkeeping + (AVCC only) dynamic re-coding.

The four implementations:

=================  ==============================================================
:class:`AVCCMaster`      verify-per-worker, decode from the fastest K verified
                         results, adapt the code at runtime (Sec. IV)
:class:`StaticVCCMaster` AVCC minus dynamic coding (the Fig. 5 ablation)
:class:`LCCMaster`       wait for ``N - S`` results, Reed–Solomon error
                         correction, ``2M`` worker overhead (Sec. II)
:class:`UncodedMaster`   no redundancy, ``K`` workers, waits for all,
                         ingests Byzantine results silently (Sec. V)
=================  ==============================================================
"""

from repro.core.avcc import AVCCMaster
from repro.core.dynamic import AdaptivePolicy, EncodingCache, RecodeDecision
from repro.core.gramian import GramianAVCCMaster
from repro.core.matmul import CodedMatmulAVCCMaster
from repro.core.lcc_master import LCCMaster
from repro.core.results import (
    AdaptationOutcome,
    InsufficientResultsError,
    RoundOutcome,
)
from repro.core.static_vcc import StaticVCCMaster
from repro.core.uncoded import UncodedMaster

__all__ = [
    "AVCCMaster",
    "CodedMatmulAVCCMaster",
    "AdaptationOutcome",
    "AdaptivePolicy",
    "EncodingCache",
    "GramianAVCCMaster",
    "InsufficientResultsError",
    "LCCMaster",
    "RecodeDecision",
    "RoundOutcome",
    "StaticVCCMaster",
    "UncodedMaster",
]
