"""Common machinery for all masters: padding, cost helpers, the
broadcast-compute-collect round skeleton.

Masters are **backend-agnostic**: they accept any
:class:`~repro.runtime.backend.Backend` (the discrete-event simulator,
the thread pool, or the shared-memory process pool) and drive it
through declarative :class:`~repro.runtime.backend.RoundJob` dispatches.
A master's verify/decode/adapt logic never changes across backends —
only where the worker arithmetic physically runs.

Every matvec master serves two encoded matrix *families* (paper
Sec. IV-A):

* ``fwd`` — row-blocks of ``X`` (``(m_pad/K, d)`` each), computing
  ``z = X·w`` from worker products ``X~_i·w``;
* ``bwd`` — row-blocks of ``X^T`` (``(d_pad/K, m_pad)`` each), computing
  ``g = X^T·e`` from worker products ``(X^T)~_i·e``.

Padding: GISETTE's ``m = 6000`` is not divisible by ``K = 9``, so rows
(and columns for the transpose side) are zero-padded up to the next
multiple of ``K``; zero rows decode to zeros and are stripped from the
returned vectors, leaving the computation bit-identical to the unpadded
one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Sequence

import numpy as np

from repro.coding.base import unpartition_rows
from repro.ff.field import PrimeField
from repro.obs.audit import digest_array
from repro.runtime.backend import Arrival, Backend, RoundHandle, RoundJob, RoundResult
from repro.runtime.trace import RoundRecord

__all__ = ["pad_rows_to_multiple", "MatvecMasterBase", "FamilyState", "RoundPlan"]


def pad_rows_to_multiple(x: np.ndarray, k: int) -> np.ndarray:
    """Zero-pad the first axis of ``x`` up to a multiple of ``k``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    m = x.shape[0]
    pad = (-m) % k
    if pad == 0:
        return x
    widths = [(0, pad)] + [(0, 0)] * (x.ndim - 1)
    return np.pad(x, widths)


@dataclass
class FamilyState:
    """Per-family bookkeeping (one for ``fwd``, one for ``bwd``)."""

    name: str              # payload key on the workers
    true_len: int          # m (fwd) or d (bwd): output length before padding
    padded_len: int        # m_pad or d_pad
    operand_len: int       # d (fwd) or m_pad (bwd): broadcast length
    operand_true_len: int  # d (fwd) or m (bwd): operand length pre-padding
    block_rows: int        # padded_len // k
    block_cols: int        # columns of each share

    def pad_operand(self, field, operand: np.ndarray) -> np.ndarray:
        """Zero-extend a true-length operand to the broadcast length
        (masters accept unpadded operands; padding is internal).

        Accepts a single vector or a ``(len, B)`` batch of ``B``
        operands stacked along the trailing axis."""
        operand = field.asarray(operand)
        if operand.ndim not in (1, 2):
            raise ValueError(
                f"{self.name} operand must be 1-D or 2-D, got shape {operand.shape}"
            )
        length = operand.shape[0]
        if length == self.operand_len:
            return operand
        if length == self.operand_true_len:
            pad_shape = (self.operand_len - self.operand_true_len,) + operand.shape[1:]
            return np.concatenate([operand, field.zeros(pad_shape)])
        raise ValueError(
            f"{self.name} operand must have length {self.operand_true_len} "
            f"(or padded {self.operand_len}), got {operand.shape}"
        )


@dataclass(frozen=True)
class RoundPlan:
    """Everything needed to dispatch and later finalize one round.

    The round lifecycle is an explicit **plan → dispatch → collect →
    finalize** state machine: ``plan_round`` pads/stacks the operands,
    builds the declarative :class:`~repro.runtime.backend.RoundJob`
    and *snapshots* the verification context (keys, code, code
    positions, participants) so the master stays re-entrant — a
    dynamic re-code between plan and finalize can never corrupt an
    in-flight round's bookkeeping. ``dispatch_plan`` hands the job to
    the backend; ``complete_round`` consumes the arrival stream,
    verifies, decodes and traces.

    Attributes
    ----------
    family:
        Encoded family served (``"fwd"``/``"bwd"``/``"gram"``...).
    round_name:
        Name stamped on the round's trace record.
    job:
        The declarative broadcast-compute-collect description.
    participants:
        Worker ids the round was planned against (snapshot of the
        master's active pool at plan time).
    width:
        Trailing batch width of the stacked operand (1 = plain vector).
    n_jobs:
        How many session-level jobs the round serves. ``0`` marks a
        *raw* round (``forward_round``-style single operand): the
        finalized vector is returned unsplit.
    context:
        Master-specific frozen verification/decoding context.
    """

    family: str
    round_name: str
    job: RoundJob
    participants: tuple[int, ...]
    width: int = 1
    n_jobs: int = 0
    context: Any = None


class MatvecMasterBase:
    """Skeleton shared by AVCC, LCC, uncoded and Static VCC masters.

    Subclasses implement their waiting/verification policy over the
    round's :class:`~repro.runtime.backend.RoundHandle` and ``setup``;
    the round-driving logic here is common and backend-agnostic.

    The round lifecycle is split into the :class:`RoundPlan` state
    machine so callers (the session scheduler) can hold several rounds
    in flight: ``plan_round`` → ``dispatch_plan`` → ``complete_round``.
    The blocking helpers (``forward_round`` / ``round_many``) are thin
    compositions of those three stages.
    """

    name = "base"

    #: the session's shared :class:`~repro.obs.audit.AuditLog` when
    #: ``SessionConfig.audit`` is on, ``None`` otherwise. Armed by the
    #: session; with it off, :meth:`_audit_commit` is a no-op and the
    #: finalize path is byte-identical to an unaudited build.
    audit: Any = None

    #: latency-ratio threshold of the *exact-timing* straggler detector:
    #: on backends with a virtual clock (``timing_is_exact`` — the
    #: simulator), a worker is observed as a straggler when its arrival
    #: latency exceeds this multiple of the round's median latency. The
    #: paper does not specify its detector; the median-ratio test flags
    #: exactly the "order of magnitude" slowdowns it describes while
    #: ignoring benign jitter. Wall-clock backends (threads, processes)
    #: do **not** use this ratio at all — OS scheduling jitter would
    #: masquerade as straggling there, so they observe a straggler as a
    #: worker whose results went unused in *every* round of the
    #: iteration (see :meth:`_note_stragglers`).
    straggler_ratio = 2.0

    def __init__(self, backend: Backend, rng: np.random.Generator | None = None):
        self.backend = backend
        self.field: PrimeField = backend.field
        self.cost_model = backend.cost_model
        self.rng = rng or np.random.default_rng(0)
        #: worker ids participating, in code-position order
        self.active: list[int] = list(range(backend.n))
        self._families: dict[str, FamilyState] = {}
        self._iteration = 0
        # per-iteration observation scratch (reset by end_iteration)
        self._iter_rejected: set[int] = set()
        self._iter_stragglers: set[int] = set()
        self._iter_round_stragglers: list[set[int]] = []

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _position_of(self, worker_id: int) -> int:
        """Code position (index into alpha points) of a worker."""
        return self.active.index(worker_id)

    def _family(self, family: str) -> FamilyState:
        try:
            return self._families[family]
        except KeyError:
            raise ValueError(f"unknown family {family!r}; call setup() first") from None

    def _plan_family_round(
        self, family: str, operand: np.ndarray, context: Any = None
    ) -> RoundPlan:
        """Shared plan builder for the matvec families: pad the operand,
        build the broadcast job, snapshot the participants."""
        st = self._family(family)
        operand = st.pad_operand(self.field, self.field.asarray(operand))
        if operand.shape[0] != st.operand_len or operand.ndim not in (1, 2):
            raise ValueError(
                f"{family} operand must have length {st.operand_len}, got {operand.shape}"
            )
        width = 1 if operand.ndim == 1 else int(operand.shape[1])
        job = RoundJob(op="matvec", payload_key=st.name, operand=operand)
        return RoundPlan(
            family=family,
            round_name=family,
            job=job,
            participants=tuple(self.active),
            width=width,
            context=context,
        )

    def _master_free_at(self, handle: RoundHandle) -> float:
        """When the master core can start verifying this round's
        arrivals: not before the broadcast finished, and not before the
        master finished whatever it was doing (finalizing earlier
        in-flight rounds, broadcasting later ones). On the serial path
        ``backend.now`` sits exactly at the end of the broadcast, so
        this is the classic ``t_start + broadcast_time``."""
        return max(handle.t_start + handle.broadcast_time, self.backend.now)

    def _note_stragglers(self, rr: RoundResult, used: Sequence[int] = ()) -> None:
        """Straggler observation, feeding the adaptive policy's ``S_t``.

        Workers that never arrived (silent, or cancelled before
        finishing) are always flagged.

        On exact-timing backends (the simulator) a worker is
        additionally flagged when its broadcast-to-arrival latency
        exceeds ``straggler_ratio`` times the round's median latency.
        Note that a straggler the master *waited for* still counts —
        that is what makes the Fig. 5 scenario observe ``S_t = 3``
        even though only two stragglers went unused.

        On wall-clock backends the ratio test misfires: at millisecond
        scale, OS scheduling jitter (especially with more workers than
        cores) routinely exceeds twice the median, and false flags
        goad the adaptive policy into shrinking the code. There a
        worker is instead observed as a straggler when its result went
        unused — the paper's operational reading of ``S_t`` — and only
        if that happened in *every* round of the iteration: which
        worker loses a scheduling race changes round to round, but a
        genuine straggler loses them all.
        """
        bcast_done = rr.t_start + rr.broadcast_time
        finite = [a for a in rr.arrivals if math.isfinite(a.t_arrival)]
        flagged = {
            a.worker_id for a in rr.arrivals if not math.isfinite(a.t_arrival)
        }
        if not getattr(self.backend, "timing_is_exact", False):
            consumed = set(used) | self._iter_rejected
            flagged.update(a.worker_id for a in finite if a.worker_id not in consumed)
            self._iter_round_stragglers.append(flagged)
            self._iter_stragglers = set(
                set.intersection(*self._iter_round_stragglers)
            )
            return
        self._iter_stragglers.update(flagged)
        if not finite:
            return
        latencies = np.array([a.t_arrival - bcast_done for a in finite])
        med = float(np.median(latencies))
        if med <= 0.0:
            return
        for a, lat in zip(finite, latencies):
            if lat > self.straggler_ratio * med:
                self._iter_stragglers.add(a.worker_id)

    def _mk_record(
        self,
        round_name: str,
        rr: RoundResult,
        last_used: Arrival,
        t_end: float,
        verify_time: float,
        decode_time: float,
        n_collected: int,
        n_verified: int,
        rejected: Sequence[int],
        used: Sequence[int],
    ) -> RoundRecord:
        bcast_done = rr.t_start + rr.broadcast_time
        compute_wait = max(0.0, last_used.t_arrival - bcast_done - last_used.comm_time)
        worker_latencies = tuple(
            (a.worker_id, max(0.0, a.t_arrival - bcast_done))
            for a in rr.arrivals
            if math.isfinite(a.t_arrival)
        )
        return RoundRecord(
            iteration=self._iteration,
            round_name=round_name,
            t_start=rr.t_start,
            t_end=t_end,
            compute_wait=compute_wait,
            comm_time=rr.broadcast_time + last_used.comm_time,
            verify_time=verify_time,
            decode_time=decode_time,
            n_collected=n_collected,
            n_verified=n_verified,
            n_rejected=len(rejected),
            rejected_workers=tuple(rejected),
            used_workers=tuple(used),
            worker_latencies=worker_latencies,
        )

    @staticmethod
    def _strip(blocks: np.ndarray, true_len: int) -> np.ndarray:
        """Concatenate decoded blocks and strip zero padding."""
        return unpartition_rows(blocks)[:true_len]

    def _audit_commit(
        self,
        plan: RoundPlan,
        record: RoundRecord,
        *,
        output: np.ndarray,
        accepted: Sequence[int],
        verify_ok: bool,
        arrivals: Sequence[Arrival] = (),
        handle: RoundHandle | None = None,
    ) -> None:
        """Append this round's commitment to the session's audit chain
        (no-op unless the session armed :attr:`audit`).

        Digests every *received* result — rejected workers included,
        so the evidence of a Byzantine share survives verification —
        and cross-checks any daemon-countersigned digests the backend
        handle collected (``worker_digests``, socket backends only):
        workers whose shipped digest matches the master-side digest of
        the received bytes land in the commitment's ``attested`` set.
        """
        if self.audit is None:
            return
        n_t, k_t = self.scheme_now
        scheme = getattr(self, "scheme", None)
        s = int(getattr(scheme, "s", 0) or getattr(self, "s", 0) or 0)
        m = int(getattr(scheme, "m", 0) or getattr(self, "m", 0) or 0)
        digests = {
            int(a.worker_id): digest_array(a.value)
            for a in arrivals
            if a.value is not None
        }
        shipped = getattr(handle, "worker_digests", None) or {}
        attested = sorted(
            w for w, d in digests.items() if shipped.get(w) == d
        )
        operand = plan.job.operand
        self.audit.commit(
            family=record.round_name,
            scheme=(n_t, k_t, s, m),
            operand_digest=digest_array(operand) if operand is not None else "",
            output_digest=digest_array(output),
            workers=plan.participants,
            worker_digests=sorted(digests.items()),
            attested=attested,
            accepted=accepted,
            rejected=record.rejected_workers,
            verify_ok=verify_ok,
            t_end=record.t_end,
        )

    # ------------------------------------------------------------------
    # cost formulas (documented in DESIGN.md; drive simulated timing)
    # ------------------------------------------------------------------
    @staticmethod
    def lagrange_decode_macs(n_used: int, k: int, block_elems: int) -> int:
        """Interpolate-and-evaluate decode: basis build ``O(R^2)`` plus
        the ``(k, R) @ (R, block)`` application."""
        return n_used * n_used + k * n_used * block_elems

    @staticmethod
    def bw_decode_macs(n_received: int, degree: int, budget: int, block_elems: int) -> int:
        """Berlekamp–Welch cost: random projection over the blocks, the
        ``(D + 2e + 1)^3 / 3`` Gaussian solve, residual re-evaluation,
        and the final erasure interpolation."""
        dim = degree + 2 * budget + 1
        solve = dim**3 // 3
        proj = n_received * block_elems
        resid = n_received * (degree + budget)
        return proj + solve + resid

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    def setup(self, x_field: np.ndarray) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def forward_round(self, w):
        return self._round("fwd", w)

    def backward_round(self, e):
        return self._round("bwd", e)

    # ------------------------------------------------------------------
    # round lifecycle: plan -> dispatch -> collect/finalize
    # ------------------------------------------------------------------
    def plan_round(self, family: str, operands: Sequence[np.ndarray]) -> RoundPlan:
        """Stage 1: coalesce ``operands`` (same-family jobs) into one
        plan. A single operand stays a plain vector round; several are
        stacked into a ``(len, B)`` batch served by one broadcast."""
        ops = [self.field.asarray(op) for op in operands]
        if not ops:
            raise ValueError("plan_round needs at least one operand")
        if len(ops) == 1:
            raw = ops[0]
        else:
            st = self._family(family)
            raw = np.stack([st.pad_operand(self.field, op) for op in ops], axis=1)
        return dc_replace(self._plan_raw(family, raw), n_jobs=len(ops))

    def dispatch_plan(self, plan: RoundPlan) -> RoundHandle:
        """Stage 2: hand the planned job to the backend. Non-blocking on
        every backend — the returned handle is the in-flight round."""
        return self.backend.dispatch_round(plan.job, participants=list(plan.participants))

    def complete_round(self, plan: RoundPlan, handle: RoundHandle):
        """Stages 3+4: consume the arrival stream (per-arrival verify
        where the policy has one), decode, trace. Returns one
        :class:`~repro.core.results.RoundOutcome` per planned job, in
        submission order; they share the round's record."""
        from repro.core.results import RoundOutcome

        out = self._complete_raw(plan, handle)
        if plan.n_jobs <= 1:
            return [out]
        return [
            RoundOutcome(vector=out.vector[:, j], record=out.record)
            for j in range(plan.n_jobs)
        ]

    def round_many(self, family: str, operands: Sequence[np.ndarray]):
        """Serve many same-family jobs in **one** blocking broadcast
        round (plan → dispatch → complete back to back).

        Workers compute all products in one pass, verification checks
        each worker's whole batch with one probe application, and a
        single decode recovers every job — B jobs cost one broadcast,
        one arrival wait and one straggler exposure instead of B.
        """
        ops = list(operands)
        if not ops:
            return []
        plan = self.plan_round(family, ops)
        return self.complete_round(plan, self.dispatch_plan(plan))

    def _round(self, family: str, operand):
        """Blocking raw round (operand may be a pre-stacked batch)."""
        plan = self._plan_raw(family, operand)
        return self._complete_raw(plan, self.dispatch_plan(plan))

    def _plan_raw(self, family: str, operand) -> RoundPlan:  # pragma: no cover
        raise NotImplementedError

    def _complete_raw(self, plan: RoundPlan, handle: RoundHandle):  # pragma: no cover
        raise NotImplementedError

    def _reset_iteration_observations(self) -> None:
        self._iteration += 1
        self._iter_rejected = set()
        self._iter_stragglers = set()
        self._iter_round_stragglers = []

    def end_iteration(self):
        """Default: advance the iteration counter, no adaptation."""
        from repro.core.results import AdaptationOutcome

        out = AdaptationOutcome(
            reencode_time=0.0,
            scheme=self.scheme_now,
            dropped_workers=(),
            observed_stragglers=tuple(sorted(self._iter_stragglers - self._iter_rejected)),
            detected_byzantine=tuple(sorted(self._iter_rejected)),
        )
        self._reset_iteration_observations()
        return out

    @property
    def scheme_now(self) -> tuple[int, int]:  # pragma: no cover - abstract
        raise NotImplementedError
