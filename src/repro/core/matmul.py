"""AVCC for coded matrix–matrix multiplication.

The second full instantiation of the paper's decoupling principle
(after the matvec masters): **polynomial codes** (Yu et al. [17])
provide straggler resilience for ``C = A @ B``, while per-worker
Freivalds matmul checks provide Byzantine security at one extra worker
per attacker. The resource bound mirrors Eq. (2)::

    N >= p·q + S + M        (AVCC-style)
    N >= p·q + S + 2M       (RS-error-correction style)

Workers hold coded factor pairs ``(A~_i, B~_i)`` and return
``C~_i = A~_i @ B~_i``; the master verifies each arrival against its
stored ``B~_i`` and the precomputed left probe, collects ``pq``
verified evaluations, and interpolates all ``A_j @ B_k`` blocks.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.coding.base import partition_rows
from repro.coding.polynomial import PolynomialCode
from repro.core.base import MatvecMasterBase, RoundPlan
from repro.core.results import InsufficientResultsError, RoundOutcome
from repro.runtime.backend import Backend, RoundHandle, RoundJob
from repro.verify.matmul import MatmulVerifier

__all__ = ["CodedMatmulAVCCMaster"]


@dataclass(frozen=True)
class _MatmulRoundContext:
    """Verification/decoding snapshot taken at plan time."""

    keys: dict[int, object]
    b_shares: np.ndarray
    code: PolynomialCode
    code_pos: dict[int, int]
    need: int


class CodedMatmulAVCCMaster(MatvecMasterBase):
    """Verified, straggler-resilient distributed ``A @ B``.

    Each master instance ships its factor shares under unique payload
    keys (``A#<uid>`` / ``B#<uid>``): a session serves every
    ``submit_matmul`` through a fresh master, and with rounds
    pipelined a later job's ``setup`` must never overwrite factors a
    still-in-flight round is computing on.
    """

    name = "matmul_avcc"

    #: per-instance uid source for the unique payload keys
    _uids = itertools.count()

    def __init__(
        self,
        cluster: Backend,
        p: int,
        q: int,
        s: int = 0,
        m: int = 0,
        probes: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(cluster, rng)
        required = p * q + s + m
        if cluster.n < required:
            raise ValueError(
                f"need N >= p*q + S + M = {required} workers, cluster has {cluster.n}"
            )
        self.p = p
        self.q = q
        self.s = s
        self.m = m
        uid = next(CodedMatmulAVCCMaster._uids)
        self._key_a = f"A#{uid}"
        self._key_b = f"B#{uid}"
        self.verifier = MatmulVerifier(self.field, probes=probes)
        self._code: PolynomialCode | None = None
        self._b_shares = None
        self._keys = None
        self._out_shape: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    def setup(self, a: np.ndarray, b: np.ndarray) -> float:
        """Encode and distribute both factors; precompute probe keys."""
        t0 = self.backend.now
        field = self.field
        a = field.asarray(a)
        b = field.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible factors {a.shape} @ {b.shape}")
        if a.shape[0] % self.p or b.shape[1] % self.q:
            raise ValueError(
                f"p={self.p} must divide A's rows and q={self.q} B's columns"
            )
        self._out_shape = (a.shape[0], b.shape[1])
        a_blocks = partition_rows(a, self.p)
        b_blocks = partition_rows(np.ascontiguousarray(b.T), self.q)
        b_blocks = b_blocks.transpose(0, 2, 1)  # (q, n, r/q) column blocks

        self._code = PolynomialCode(field, self.backend.n, self.p, self.q)
        a_shares = self._code.encode_a(a_blocks)
        b_shares = self._code.encode_b(b_blocks)
        self.backend.distribute(self._key_a, a_shares, participants=self.active)
        self.backend.distribute(self._key_b, b_shares, participants=self.active)
        self._b_shares = b_shares
        self._keys = {
            wid: self.verifier.keygen_single(a_shares[slot], self.rng)
            for slot, wid in enumerate(self.active)
        }
        return self.backend.now - t0

    @property
    def scheme_now(self) -> tuple[int, int]:
        return (len(self.active), self.p * self.q)

    # ------------------------------------------------------------------
    def multiply(self) -> RoundOutcome:
        """One blocking coded round computing the full ``A @ B``."""
        plan = self.plan_multiply()
        return self.complete_multiply(plan, self.dispatch_plan(plan))

    # scheduler-facing aliases: a matmul round carries its operands in
    # the pre-shipped payload, so the generic (family, operands) plan
    # surface ignores both arguments
    def plan_round(self, family: str, operands: Sequence) -> RoundPlan:
        return self.plan_multiply()

    def complete_round(self, plan: RoundPlan, handle: RoundHandle) -> list[RoundOutcome]:
        return [self.complete_multiply(plan, handle)]

    def plan_multiply(self) -> RoundPlan:
        """Stage 1: snapshot keys/factor shares; factors are
        pre-shipped, so the planned round is a pure trigger."""
        if self._code is None:
            raise RuntimeError("setup() must be called before multiply()")
        ctx = _MatmulRoundContext(
            keys=dict(self._keys),
            b_shares=self._b_shares,
            code=self._code,
            code_pos={wid: slot for slot, wid in enumerate(self.active)},
            need=self._code.recovery_threshold,
        )
        return RoundPlan(
            family="matmul",
            round_name="matmul",
            job=RoundJob(op="matmul", payload_key=self._key_a, rhs_key=self._key_b),
            participants=tuple(self.active),
            width=int(self._b_shares.shape[2]),
            context=ctx,
        )

    def complete_multiply(self, plan: RoundPlan, handle: RoundHandle) -> RoundOutcome:
        """Stages 3+4: verify each arriving product, stop at the
        recovery threshold, interpolate the block products."""
        ctx: _MatmulRoundContext = plan.context
        need = ctx.need
        master_free = self._master_free_at(handle)
        verified, rejected, verify_time = [], [], 0.0
        t_done = math.inf
        out_cols = plan.width
        for a in handle:
            key = ctx.keys[a.worker_id]
            vt = self.cost_model.master_compute_time(
                self.verifier.check_cost_ops(key, out_cols)
            )
            start = max(a.t_arrival, master_free)
            master_free = start + vt
            verify_time += vt
            slot = ctx.code_pos[a.worker_id]
            if self.verifier.check(key, ctx.b_shares[slot], a.value):
                verified.append(a)
            else:
                rejected.append(a.worker_id)
            if len(verified) == need:
                t_done = master_free
                handle.cancel()
                break
        rr = handle.result()
        if len(verified) < need:
            raise InsufficientResultsError(
                f"matmul round: {len(verified)} verified products, need {need}"
            )

        positions = np.asarray([ctx.code_pos[a.worker_id] for a in verified])
        products = np.stack([a.value for a in verified])
        block_elems = int(products[0].size)
        decode_time = self.cost_model.master_compute_time(
            need**3 // 3 + need * need * block_elems
        )
        blocks = ctx.code.decode(positions, products)
        c = PolynomialCode.assemble(blocks)

        t_end = t_done + decode_time
        self._iter_rejected.update(rejected)
        self._note_stragglers(rr, used=[a.worker_id for a in verified])
        record = self._mk_record(
            round_name=plan.round_name,
            rr=rr,
            last_used=verified[-1],
            t_end=t_end,
            verify_time=verify_time,
            decode_time=decode_time,
            n_collected=len(verified) + len(rejected),
            n_verified=len(verified),
            rejected=rejected,
            used=[a.worker_id for a in verified],
        )
        self._audit_commit(
            plan, record, output=c,
            accepted=[a.worker_id for a in verified],
            verify_ok=not rejected,
            arrivals=rr.arrived(), handle=handle,
        )
        self.backend.advance_to(t_end)
        return RoundOutcome(vector=c, record=record)
