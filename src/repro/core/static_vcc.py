"""Static VCC — the Fig. 5 ablation.

"Static VCC is a constrained version of AVCC, where the verification
mechanism is still available to mitigate Byzantine nodes, but the
dynamic coding is removed so that the coding scheme will not change
throughout the execution" (Sec. VI).

Implementation: an :class:`~repro.core.avcc.AVCCMaster` constructed
with ``adaptive=False`` — it still rejects Byzantine results per-worker
but never drops workers nor re-encodes, so once stragglers outnumber
the scheme's slack it pays their tail latency every iteration.
"""

from __future__ import annotations

import numpy as np

from repro.coding.scheme import SchemeParams
from repro.core.avcc import AVCCMaster
from repro.runtime.backend import Backend

__all__ = ["StaticVCCMaster"]


class StaticVCCMaster(AVCCMaster):
    """AVCC without the adaptation step."""

    name = "static_vcc"

    def __init__(
        self,
        cluster: Backend,
        scheme: SchemeParams,
        probes: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(cluster, scheme, probes=probes, adaptive=False, rng=rng)
