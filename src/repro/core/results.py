"""Shared result/outcome records for the coded masters."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.trace import RoundRecord

__all__ = ["RoundOutcome", "AdaptationOutcome", "InsufficientResultsError"]


class InsufficientResultsError(RuntimeError):
    """Raised when a master cannot gather enough (verified) results to
    decode — more failures than the deployed scheme tolerates."""


@dataclass(frozen=True)
class RoundOutcome:
    """Product of one coded round.

    Attributes
    ----------
    vector:
        The decoded full-length result (padding stripped), in F_q.
    record:
        Timing/accounting for the round.
    """

    vector: np.ndarray
    record: RoundRecord


@dataclass(frozen=True)
class AdaptationOutcome:
    """What ``end_iteration`` did (AVCC's dynamic coding step).

    Attributes
    ----------
    reencode_time:
        Simulated seconds spent re-shipping shares (0 when no re-code).
    scheme:
        The ``(N_t, K_t)`` in effect *after* adaptation.
    dropped_workers:
        Byzantine workers removed from the pool this iteration.
    observed_stragglers:
        ``S_t``: workers whose results the master never used.
    detected_byzantine:
        ``M_t``: workers that failed verification this iteration.
    joined_workers:
        Workers admitted into the roster at this quiesce point
        (rejoins of dead/dropped ids and brand-new capacity alike).
    departed_workers:
        Workers evicted from the roster at this quiesce point for
        reasons *other* than Byzantine detection — heartbeat-declared
        deaths reconciled by the session, or explicit releases.
    """

    reencode_time: float = 0.0
    scheme: tuple[int, int] = (0, 0)
    dropped_workers: tuple[int, ...] = ()
    observed_stragglers: tuple[int, ...] = ()
    detected_byzantine: tuple[int, ...] = ()
    joined_workers: tuple[int, ...] = ()
    departed_workers: tuple[int, ...] = ()
