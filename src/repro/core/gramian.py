"""Generalized AVCC: a degree-2 (gramian) coded computation.

The matvec masters serve ``deg f = 1`` rounds. This master demonstrates
the paper's generalization claim (Sec. IV-B: "in principle, AVCC can be
applied to any polynomial f") on the canonical degree-2 workload:

    g = X^T X w = sum_j X_j^T X_j w,      f(X_j) = X_j^T X_j w.

Workers hold a single coded share ``X~_i`` and return both the
intermediate ``z~_i = X~_i w`` and the gramian product
``g~_i = X~_i^T z~_i``. Because ``f`` has degree 2 in the share, the
master needs ``(K + T - 1)·2 + 1`` *verified* evaluations (Eq. 14) —
which is exactly what :class:`~repro.coding.scheme.SchemeParams` with
``deg_f = 2`` accounts for — and verification uses the two-stage
Freivalds protocol (both stages are linear, soundness ``2/q``).

One-round linear regression: ``∇ = (X^T X w − X^T y)/m`` where the
constant ``X^T y`` is computed once at setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Sequence

import numpy as np

from repro.coding.base import partition_rows
from repro.coding.lcc import LagrangeCode
from repro.coding.scheme import SchemeParams
from repro.core.base import MatvecMasterBase, RoundPlan, pad_rows_to_multiple
from repro.core.results import InsufficientResultsError, RoundOutcome
from repro.runtime.backend import Backend, RoundHandle, RoundJob
from repro.verify.twostage import TwoStageVerifier

__all__ = ["GramianAVCCMaster"]


@dataclass(frozen=True)
class _GramianRoundContext:
    """Verification/decoding snapshot taken at plan time."""

    keys: dict[int, object]
    code_pos: dict[int, int]
    code: LagrangeCode
    need: int
    b: int
    d: int


class GramianAVCCMaster(MatvecMasterBase):
    """AVCC master for the degree-2 computation ``g = X^T X w``."""

    name = "gramian_avcc"

    def __init__(
        self,
        cluster: Backend,
        scheme: SchemeParams,
        probes: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(cluster, rng)
        if scheme.n != cluster.n:
            raise ValueError(f"scheme.n={scheme.n} != cluster.n={cluster.n}")
        if scheme.deg_f != 2:
            raise ValueError("GramianAVCCMaster requires deg_f=2 in the scheme")
        scheme.validate_for("avcc")
        self.scheme = scheme
        self.verifier = TwoStageVerifier(self.field, probes=probes)
        self._code: LagrangeCode | None = None
        self._keys = None
        self._code_pos: dict[int, int] = {}
        self._m = 0
        self._m_pad = 0
        self._d = 0

    # ------------------------------------------------------------------
    def setup(self, x_field: np.ndarray) -> float:
        t0 = self.backend.now
        x = self.field.asarray(x_field)
        if x.ndim != 2:
            raise ValueError("dataset must be a matrix")
        self._m, self._d = x.shape
        k = self.scheme.k
        x_pad = pad_rows_to_multiple(x, k)
        self._m_pad = x_pad.shape[0]
        self._code = LagrangeCode(
            self.field, n=self.scheme.n, k=k, t=self.scheme.t
        )
        shares = self._code.encode(
            partition_rows(x_pad, k), self.rng if self.scheme.t else None
        )
        self.backend.distribute("gram", shares, participants=self.active)
        self._keys = {
            wid: self.verifier.keygen_single(shares[slot], self.rng)
            for slot, wid in enumerate(self.active)
        }
        # code position (alpha index) of each worker, frozen at encoding
        # time — stays valid when workers are later dropped
        self._code_pos = {wid: slot for slot, wid in enumerate(self.active)}
        return self.backend.now - t0

    def drop_workers(self, worker_ids) -> None:
        """Stop dispatching to ``worker_ids`` (e.g. Byzantine workers the
        matvec master evicted): their redundancy is spent, the code is
        unchanged. The backend pool itself is managed by the caller."""
        dead = set(int(w) for w in worker_ids)
        self.active = [w for w in self.active if w not in dead]
        if self._keys is not None:
            self._keys = {w: k for w, k in self._keys.items() if w not in dead}
        self._code_pos = {
            w: p for w, p in getattr(self, "_code_pos", {}).items() if w not in dead
        }

    @property
    def scheme_now(self) -> tuple[int, int]:
        return (len(self.active), self.scheme.k)

    # ------------------------------------------------------------------
    def plan_round(self, family: str, operands: Sequence[np.ndarray]) -> RoundPlan:
        """Stage 1 for the degree-2 family: stack the operands into a
        ``(d, B)`` batch (no padding — operands are full-length) and
        snapshot keys/code/positions."""
        ops = [self.field.asarray(w) for w in operands]
        if not ops:
            raise ValueError("plan_round needs at least one operand")
        raw = ops[0] if len(ops) == 1 else np.stack(ops, axis=1)
        return dc_replace(self._plan_raw(family, raw), n_jobs=len(ops))

    def _plan_raw(self, family: str, operand) -> RoundPlan:
        if self._code is None:
            raise RuntimeError("setup() must be called before rounds")
        w = self.field.asarray(operand)
        if w.ndim not in (1, 2) or w.shape[0] != self._d:
            raise ValueError(f"operand must have length {self._d}, got {w.shape}")
        ctx = _GramianRoundContext(
            keys=dict(self._keys),
            code_pos=dict(self._code_pos),
            code=self._code,
            need=self._code.recovery_threshold(deg_f=2),
            b=self._m_pad // self.scheme.k,
            d=self._d,
        )
        return RoundPlan(
            family="gram",
            round_name="gramian",
            job=RoundJob(op="gramian", payload_key="gram", operand=w),
            participants=tuple(self.active),
            width=1 if w.ndim == 1 else int(w.shape[1]),
            context=ctx,
        )

    def _complete_raw(self, plan: RoundPlan, handle: RoundHandle) -> RoundOutcome:
        ctx: _GramianRoundContext = plan.context
        field = self.field
        w = plan.job.operand
        need, b, d = ctx.need, ctx.b, ctx.d

        master_free = self._master_free_at(handle)
        verified, rejected, verify_time = [], [], 0.0
        t_done = math.inf
        for a in handle:
            key = ctx.keys[a.worker_id]
            vt = self.cost_model.master_compute_time(
                self.verifier.check_cost_ops(key, plan.width)
            )
            start = max(a.t_arrival, master_free)
            master_free = start + vt
            verify_time += vt
            z_i, g_i = a.value[:b], a.value[b:]
            if self.verifier.check(key, w, z_i, g_i):
                verified.append(a)
            else:
                rejected.append(a.worker_id)
            if len(verified) == need:
                t_done = master_free
                handle.cancel()
                break
        rr = handle.result()
        if len(verified) < need:
            raise InsufficientResultsError(
                f"gramian round: {len(verified)} verified results, need {need}"
            )

        positions = np.asarray([ctx.code_pos[a.worker_id] for a in verified])
        g_vals = np.stack([a.value[b:] for a in verified])
        decode_time = self.cost_model.master_compute_time(
            self.lagrange_decode_macs(need, self.scheme.k, d * plan.width)
        )
        blocks = ctx.code.decode(positions, g_vals, deg_f=2)   # (k, d[, B])
        g = blocks.sum(axis=0) % field.q

        t_end = t_done + decode_time
        self._iter_rejected.update(rejected)
        self._note_stragglers(rr, used=[a.worker_id for a in verified])
        record = self._mk_record(
            round_name=plan.round_name,
            rr=rr,
            last_used=verified[-1],
            t_end=t_end,
            verify_time=verify_time,
            decode_time=decode_time,
            n_collected=len(verified) + len(rejected),
            n_verified=len(verified),
            rejected=rejected,
            used=[a.worker_id for a in verified],
        )
        self._audit_commit(
            plan, record, output=g,
            accepted=[a.worker_id for a in verified],
            verify_ok=not rejected,
            arrivals=rr.arrived(), handle=handle,
        )
        self.backend.advance_to(t_end)
        return RoundOutcome(vector=g, record=record)

    def gramian_round_many(self, operands) -> list[RoundOutcome]:
        """Serve many gramian jobs in one blocking broadcast round (the
        batched analogue of :meth:`MatvecMasterBase.round_many`):
        operands are stacked into a ``(d, B)`` batch, each worker
        returns its ``concat(z, g)`` for all columns, and one decode
        recovers every job. Outcomes share the round's record."""
        ops = list(operands)
        if not ops:
            return []
        plan = self.plan_round("gram", ops)
        return self.complete_round(plan, self.dispatch_plan(plan))

    def gramian_round(self, w) -> RoundOutcome:
        """One blocking coded round computing ``X^T X w``.

        Accepts a single length-``d`` operand or a ``(d, B)`` batch."""
        return self._round("gram", w)
