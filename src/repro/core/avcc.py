"""The AVCC master (paper Sec. IV).

Per round, the master:

1. broadcasts the operand and lets workers compute over their shares;
2. **verifies each arrival independently** with its Freivalds key the
   moment it lands (serialized on the master core — verification of a
   result can start only when the previous check finished);
3. stops as soon as the recovery threshold of *verified* results is
   reached — the round is cancelled so no backend waits on unneeded
   stragglers, and Byzantine workers are rejected and "effectively
   treated as stragglers" (Sec. IV-A step 4);
4. decodes by Lagrange interpolation over the verified subset.

``end_iteration`` runs the dynamic-coding policy: detected Byzantine
workers are dropped from the pool (their redundancy is spent), and if
the straggler population has eaten the code's slack the master switches
to a pre-encoded smaller configuration, paying only the share re-ship
time (Fig. 5's one-time bump).

The master is backend-agnostic: it runs unmodified on the simulator,
the thread pool, and the process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.coding.scheme import SchemeParams
from repro.core.base import FamilyState, MatvecMasterBase, RoundPlan
from repro.core.dynamic import AdaptivePolicy, EncodingCache
from repro.core.results import AdaptationOutcome, InsufficientResultsError, RoundOutcome
from repro.runtime.backend import Backend, RoundHandle
from repro.verify.freivalds import FreivaldsVerifier, MatvecKey

__all__ = ["AVCCMaster"]


@dataclass(frozen=True)
class _AvccRoundContext:
    """Verification/decoding snapshot taken at plan time.

    ``keys`` and ``code_pos`` are dict copies; ``st`` and ``code`` are
    references into the :class:`EncodedConfig` current at plan time.
    That is enough for re-entrancy because a dynamic re-code
    (``end_iteration`` → ``_install_config``) *replaces*
    ``self._families`` / ``self._cfg`` wholesale — existing
    ``FamilyState`` and code objects are never mutated in place, so a
    round planned under the old configuration keeps decoding against
    exactly the objects it was planned with. Any future change that
    mutates these objects in place instead of replacing them would
    break this contract.
    """

    st: FamilyState
    keys: dict[int, MatvecKey]
    code_pos: dict[int, int]
    code: object
    k: int
    need: int


class AVCCMaster(MatvecMasterBase):
    """Adaptive verifiable coded computing master.

    Parameters
    ----------
    cluster:
        Any execution backend (``backend.n`` must equal ``scheme.n``).
    scheme:
        Deployment parameters; validated against Eq. (2).
    probes:
        Freivalds probes per check (1 in the paper).
    adaptive:
        ``False`` gives Static VCC (verification without re-coding).
    """

    name = "avcc"

    def __init__(
        self,
        cluster: Backend,
        scheme: SchemeParams,
        probes: int = 1,
        adaptive: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(cluster, rng)
        if scheme.n != cluster.n:
            raise ValueError(f"scheme.n={scheme.n} != cluster.n={cluster.n}")
        scheme.validate_for("avcc")
        if scheme.deg_f != 1:
            raise ValueError(
                "the matvec master serves deg_f=1 rounds; higher degrees use "
                "the generalized verifier directly"
            )
        self.scheme = scheme
        self.probes = probes
        self.adaptive = adaptive
        self.policy = AdaptivePolicy(mode="mds", deg_f=1)
        self.verifier = FreivaldsVerifier(self.field, probes=probes)
        self._cache: EncodingCache | None = None
        self._cfg = None
        self._code_pos: dict[int, int] = {}
        self._keys: dict[str, dict[int, MatvecKey]] = {}

    # ------------------------------------------------------------------
    def setup(self, x_field: np.ndarray) -> float:
        """Encode, distribute and key both families. Returns the
        backend-clock seconds spent shipping shares."""
        t0 = self.backend.now
        self._cache = EncodingCache(
            self.field, x_field, t=self.scheme.t, probes=self.probes, rng=self.rng
        )
        self._install_config(self.scheme.n, self.scheme.k, self.active)
        return self.backend.now - t0

    def _install_config(self, n: int, k: int, participants: list[int]) -> float:
        """Ship config ``(n, k)`` shares to ``participants``; returns
        the transfer time charged to the clock."""
        assert self._cache is not None
        cfg = self._cache.get(n, k)
        t0 = self.backend.now
        self.backend.distribute("fwd", cfg.fwd_shares, participants=participants)
        self.backend.distribute("bwd", cfg.bwd_shares, participants=participants)
        self._cfg = cfg
        self._code_pos = {wid: slot for slot, wid in enumerate(participants)}
        self._keys = {
            "fwd": {wid: cfg.fwd_keys[slot] for slot, wid in enumerate(participants)},
            "bwd": {wid: cfg.bwd_keys[slot] for slot, wid in enumerate(participants)},
        }
        self._families = {
            "fwd": FamilyState(
                name="fwd",
                true_len=cfg.m,
                padded_len=cfg.m_pad,
                operand_len=cfg.d,
                operand_true_len=cfg.d,
                block_rows=cfg.m_pad // k,
                block_cols=cfg.d,
            ),
            "bwd": FamilyState(
                name="bwd",
                true_len=cfg.d,
                padded_len=cfg.d_pad,
                operand_len=cfg.m_pad,
                operand_true_len=cfg.m,
                block_rows=cfg.d_pad // k,
                block_cols=cfg.m_pad,
            ),
        }
        return self.backend.now - t0

    # ------------------------------------------------------------------
    @property
    def scheme_now(self) -> tuple[int, int]:
        return (len(self.active), self._cfg.k if self._cfg else self.scheme.k)

    def _plan_raw(self, family: str, operand) -> RoundPlan:
        """Stage 1: pad the operand, build the broadcast job, snapshot
        the verification context (keys/code/positions frozen here)."""
        if self._cfg is None:
            raise RuntimeError("setup() must be called before rounds")
        ctx = _AvccRoundContext(
            st=self._family(family),
            keys=dict(self._keys[family]),
            code_pos=dict(self._code_pos),
            code=self._cfg.code,
            k=self._cfg.k,
            need=self._cfg.code.recovery_threshold(),
        )
        return self._plan_family_round(family, operand, context=ctx)

    def _complete_raw(self, plan: RoundPlan, handle: RoundHandle) -> RoundOutcome:
        """Stages 3+4: verify each arrival as it lands, stop at the
        recovery threshold, decode over the verified subset."""
        ctx: _AvccRoundContext = plan.context
        operand = plan.job.operand
        need = ctx.need

        verified, rejected, verify_time, t_verified = self._collect_verified(
            handle, ctx.keys, operand, need, width=plan.width
        )
        rr = handle.result()
        if len(verified) < need:
            raise InsufficientResultsError(
                f"{plan.family} round: only {len(verified)} verified results, "
                f"need {need}"
            )

        positions = [ctx.code_pos[a.worker_id] for a in verified]
        values = np.stack([a.value for a in verified])
        block_elems = ctx.st.block_rows * plan.width
        decode_time = self.cost_model.master_compute_time(
            self.lagrange_decode_macs(need, ctx.k, block_elems)
        )
        blocks = ctx.code.decode(np.asarray(positions), values)
        vec = self._strip(blocks, ctx.st.true_len)

        t_end = t_verified + decode_time
        self._iter_rejected.update(rejected)
        self._note_stragglers(rr, used=[a.worker_id for a in verified])
        record = self._mk_record(
            round_name=plan.round_name,
            rr=rr,
            last_used=verified[-1],
            t_end=t_end,
            verify_time=verify_time,
            decode_time=decode_time,
            n_collected=len(verified) + len(rejected),
            n_verified=len(verified),
            rejected=rejected,
            used=[a.worker_id for a in verified],
        )
        self._audit_commit(
            plan,
            record,
            output=vec,
            accepted=[a.worker_id for a in verified],
            verify_ok=not rejected,
            arrivals=rr.arrived(),
            handle=handle,
        )
        self.backend.advance_to(t_end)
        return RoundOutcome(vector=vec, record=record)

    def _collect_verified(
        self, handle: RoundHandle, keys, operand, need: int, width: int = 1
    ):
        """Consume arrivals in time order, verifying each on the master
        core, until ``need`` results pass — then cancel the round so no
        backend waits on the remaining stragglers. Returns
        ``(verified_arrivals, rejected_ids, verify_work_time, t_done)``.
        """
        master_free = self._master_free_at(handle)
        verified = []
        rejected: list[int] = []
        verify_time = 0.0
        t_done = math.inf
        for a in handle:
            key = keys[a.worker_id]
            vt = self.cost_model.master_compute_time(
                self.verifier.check_cost_ops(key, width)
            )
            start = max(a.t_arrival, master_free)
            master_free = start + vt
            verify_time += vt
            if self.verifier.check(key, operand, a.value):
                verified.append(a)
            else:
                rejected.append(a.worker_id)
            if len(verified) == need:
                t_done = master_free
                handle.cancel()
                break
        return verified, rejected, verify_time, t_done

    # ------------------------------------------------------------------
    def end_iteration(self) -> AdaptationOutcome:
        m_t_ids = tuple(sorted(self._iter_rejected & set(self.active)))
        s_t_ids = tuple(
            sorted((self._iter_stragglers - self._iter_rejected) & set(self.active))
        )
        reencode_time = 0.0
        dropped: tuple[int, ...] = ()

        if self.adaptive and (m_t_ids or s_t_ids):
            n_t = len(self.active)
            k_t = self._cfg.k
            decision = self.policy.decide(
                n_t, k_t, m_t=len(m_t_ids), s_t=len(s_t_ids), t_t=self.scheme.t
            )
            if m_t_ids:
                dropped = m_t_ids
                self.active = [w for w in self.active if w not in self._iter_rejected]
                self._code_pos = {
                    w: p for w, p in self._code_pos.items() if w in self.active
                }
                self.backend.drop_workers(dropped)
            if decision.reencode:
                reencode_time = self._install_config(
                    decision.new_n, decision.new_k, self.active
                )

        out = AdaptationOutcome(
            reencode_time=reencode_time,
            scheme=self.scheme_now,
            dropped_workers=dropped,
            observed_stragglers=s_t_ids,
            detected_byzantine=m_t_ids,
        )
        self._reset_iteration_observations()
        return out

    # ------------------------------------------------------------------
    def adopt_membership(
        self,
        joined: tuple[int, ...] | list[int] = (),
        departed: tuple[int, ...] | list[int] = (),
    ) -> float:
        """Reconcile the coding roster with a fleet membership change.

        ``joined`` are workers admitted at this quiesce point (rejoins
        and brand-new capacity alike); ``departed`` are workers gone
        for non-Byzantine reasons (heartbeat-declared deaths, explicit
        releases). Where ``end_iteration`` can only *shrink* K over
        the survivors, this can also **grow** N when capacity arrives:
        the roster is recomputed, K is re-derived from the static
        provisioning target ``K = min(scheme.k, N - (S+M+T))`` (floored
        at the policy minimum) and, whenever any worker joined or K
        changed, a full config for the new ``(N, K)`` is installed —
        re-shipping shares to *every* participant, because a rejoined
        daemon restarts with empty storage. A pure departure at
        unchanged K only prunes positions/keys: the surviving shares
        of the old code remain valid, so nothing is re-shipped.

        Returns the backend-clock seconds spent re-shipping shares
        (0.0 when nothing was shipped).
        """
        if self._cfg is None:
            raise RuntimeError("setup() must be called before membership changes")
        joined = tuple(int(w) for w in joined)
        gone = set(int(w) for w in departed) - set(joined)
        new_active = sorted((set(self.active) - gone) | set(joined))
        if not new_active:
            raise ValueError("membership change would leave no live workers")
        n_new = len(new_active)
        k_now = self._cfg.k
        if self.adaptive:
            budget = self.scheme.s + self.scheme.m + self.scheme.t
            k_new = min(self.scheme.k, n_new - budget, n_new)
            k_new = max(k_new, self.policy.min_k)
        else:
            k_new = k_now
        self.active = new_active
        if joined or k_new != k_now:
            return self._install_config(n_new, k_new, self.active)
        # pure departure at unchanged K: surviving positions stay valid
        live = set(self.active)
        self._code_pos = {w: p for w, p in self._code_pos.items() if w in live}
        self._keys = {
            fam: {w: key for w, key in keys.items() if w in live}
            for fam, keys in self._keys.items()
        }
        return 0.0
