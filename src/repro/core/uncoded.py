"""The uncoded baseline (paper Sec. V).

"No redundancy and only 9 out of the 12 workers participate in the
computation, each of them storing and processing 1/9 fraction of
uncoded rows from the input matrix. The main server waits for all 9
workers to return, and does not need to perform decoding."

Consequences the experiments measure: full exposure to stragglers
(the slowest of the K workers gates every round) and to Byzantine
workers (corrupted blocks flow straight into the result).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.base import partition_rows
from repro.core.base import FamilyState, MatvecMasterBase, RoundPlan, pad_rows_to_multiple
from repro.core.results import InsufficientResultsError, RoundOutcome
from repro.runtime.backend import Backend, RoundHandle

__all__ = ["UncodedMaster"]


class UncodedMaster(MatvecMasterBase):
    """Replication-free distributed matvec over ``k`` workers."""

    name = "uncoded"

    def __init__(
        self,
        cluster: Backend,
        k: int,
        participants: Sequence[int] | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(cluster, rng)
        if not 1 <= k <= cluster.n:
            raise ValueError(f"k={k} out of range for cluster of {cluster.n}")
        self.k = k
        if participants is None:
            participants = list(range(k))
        participants = list(participants)
        if len(participants) != k:
            raise ValueError(f"need exactly k={k} participants")
        self.active = participants
        self._dims: tuple[int, int, int, int] | None = None

    # ------------------------------------------------------------------
    def setup(self, x_field: np.ndarray) -> float:
        t0 = self.backend.now
        x = self.field.asarray(x_field)
        m, d = x.shape
        x_pad = pad_rows_to_multiple(x, self.k)
        xt_pad = pad_rows_to_multiple(np.ascontiguousarray(x_pad.T), self.k)
        m_pad, d_pad = x_pad.shape[0], xt_pad.shape[0]
        self.backend.distribute(
            "fwd", partition_rows(x_pad, self.k), participants=self.active
        )
        self.backend.distribute(
            "bwd", partition_rows(xt_pad, self.k), participants=self.active
        )
        self._dims = (m, d, m_pad, d_pad)
        self._families = {
            "fwd": FamilyState(
                name="fwd", true_len=m, padded_len=m_pad,
                operand_len=d, operand_true_len=d,
                block_rows=m_pad // self.k, block_cols=d,
            ),
            "bwd": FamilyState(
                name="bwd", true_len=d, padded_len=d_pad,
                operand_len=m_pad, operand_true_len=m,
                block_rows=d_pad // self.k, block_cols=m_pad,
            ),
        }
        return self.backend.now - t0

    @property
    def scheme_now(self) -> tuple[int, int]:
        return (self.k, self.k)

    # ------------------------------------------------------------------
    def _plan_raw(self, family: str, operand) -> RoundPlan:
        if self._dims is None:
            raise RuntimeError("setup() must be called before rounds")
        st = self._family(family)
        # participant order IS the block order for the uncoded layout
        return self._plan_family_round(family, operand, context=st)

    def _complete_raw(self, plan: RoundPlan, handle: RoundHandle) -> RoundOutcome:
        st: FamilyState = plan.context
        order = {wid: slot for slot, wid in enumerate(plan.participants)}

        finite = list(handle)  # uncoded has no slack: wait for everyone
        rr = handle.result()
        if len(finite) < self.k:
            raise InsufficientResultsError(
                f"{plan.family} round: a worker died; uncoded cannot proceed"
            )
        # waits for ALL k workers — the last arrival gates the round
        t_end = max(finite[-1].t_arrival, self._master_free_at(handle))
        by_position = sorted(finite, key=lambda a: order[a.worker_id])
        blocks = np.stack([a.value for a in by_position])
        vec = self._strip(blocks, st.true_len)
        self._note_stragglers(rr, used=[a.worker_id for a in by_position])

        record = self._mk_record(
            round_name=plan.round_name,
            rr=rr,
            last_used=finite[-1],
            t_end=t_end,
            verify_time=0.0,
            decode_time=0.0,
            n_collected=self.k,
            n_verified=self.k,  # nothing is ever checked
            rejected=[],
            used=[a.worker_id for a in by_position],
        )
        self._audit_commit(
            plan, record, output=vec,
            accepted=[a.worker_id for a in by_position],
            verify_ok=False,  # uncoded never verifies anything
            arrivals=rr.arrived(), handle=handle,
        )
        self.backend.advance_to(t_end)
        return RoundOutcome(vector=vec, record=record)
