"""The LCC baseline master (paper Sec. II / Sec. V).

Differences from AVCC, exactly as the paper characterizes them:

* **No per-worker verification.** Byzantine detection is coupled to
  decoding: the master waits for ``N − S`` results (it "has to wait for
  the results of a sufficient number of workers before identifying the
  Byzantine workers", Remark 1) and runs Reed–Solomon error correction.
* **2M worker overhead.** With the experimental ``(12, 9, S=1, M=1)``
  deployment, 11 received results give slack 2 → exactly one
  correctable error. A second simultaneous attacker exceeds capacity:
  Berlekamp–Welch fails and the baseline falls back to erasure-decoding
  the fastest ``K`` results, silently ingesting poison — which is how
  the paper's Fig. 3(b)/(d) accuracy degradation arises.
* **Static.** The worker pool and code never change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.scheme import SchemeParams
from repro.core.base import FamilyState, MatvecMasterBase, RoundPlan
from repro.core.dynamic import EncodingCache
from repro.core.results import InsufficientResultsError, RoundOutcome
from repro.ff.rs import DecodingError
from repro.runtime.backend import Backend, RoundHandle

__all__ = ["LCCMaster"]


@dataclass(frozen=True)
class _LccRoundContext:
    """Decoding snapshot taken at plan time (LCC is static, but the
    snapshot keeps in-flight rounds self-contained all the same)."""

    st: FamilyState
    code_pos: dict[int, int]
    code: object
    k: int
    need: int
    wait_count: int


class LCCMaster(MatvecMasterBase):
    """Lagrange coded computing with Reed–Solomon Byzantine tolerance."""

    name = "lcc"

    def __init__(
        self,
        cluster: Backend,
        scheme: SchemeParams,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(cluster, rng)
        if scheme.n != cluster.n:
            raise ValueError(f"scheme.n={scheme.n} != cluster.n={cluster.n}")
        scheme.validate_for("lcc")
        if scheme.deg_f != 1:
            raise ValueError("the matvec master serves deg_f=1 rounds")
        self.scheme = scheme
        self._cfg = None

    # ------------------------------------------------------------------
    def setup(self, x_field: np.ndarray) -> float:
        t0 = self.backend.now
        cache = EncodingCache(
            self.field, x_field, t=self.scheme.t, rng=self.rng, build_keys=False
        )
        cfg = cache.get(self.scheme.n, self.scheme.k)
        self.backend.distribute("fwd", cfg.fwd_shares, participants=self.active)
        self.backend.distribute("bwd", cfg.bwd_shares, participants=self.active)
        self._cfg = cfg
        k = self.scheme.k
        self._families = {
            "fwd": FamilyState(
                name="fwd", true_len=cfg.m, padded_len=cfg.m_pad,
                operand_len=cfg.d, operand_true_len=cfg.d,
                block_rows=cfg.m_pad // k, block_cols=cfg.d,
            ),
            "bwd": FamilyState(
                name="bwd", true_len=cfg.d, padded_len=cfg.d_pad,
                operand_len=cfg.m_pad, operand_true_len=cfg.m,
                block_rows=cfg.d_pad // k, block_cols=cfg.m_pad,
            ),
        }
        return self.backend.now - t0

    @property
    def scheme_now(self) -> tuple[int, int]:
        return (self.scheme.n, self.scheme.k)

    # ------------------------------------------------------------------
    def _plan_raw(self, family: str, operand) -> RoundPlan:
        if self._cfg is None:
            raise RuntimeError("setup() must be called before rounds")
        ctx = _LccRoundContext(
            st=self._family(family),
            code_pos={wid: slot for slot, wid in enumerate(self.active)},
            code=self._cfg.code,
            k=self._cfg.k,
            need=self._cfg.code.recovery_threshold(),
            wait_count=self.scheme.n - self.scheme.s,
        )
        return self._plan_family_round(family, operand, context=ctx)

    def _complete_raw(self, plan: RoundPlan, handle: RoundHandle) -> RoundOutcome:
        ctx: _LccRoundContext = plan.context
        need = ctx.need
        # LCC must wait for N - S results before it can even *detect*
        # errors (Remark 1) — but not for the stragglers beyond that.
        collected = []
        for a in handle:
            collected.append(a)
            if len(collected) == ctx.wait_count:
                handle.cancel()
                break
        rr = handle.result()
        if len(collected) < need:
            raise InsufficientResultsError(
                f"{plan.family} round: {len(collected)} results < threshold {need}"
            )
        t_wait = max(collected[-1].t_arrival, self._master_free_at(handle))

        positions = np.asarray([ctx.code_pos[a.worker_id] for a in collected])
        values = np.stack([a.value for a in collected])
        degree = ctx.k + self.scheme.t - 1
        budget = min(self.scheme.m, (len(collected) - need) // 2)
        decode_macs = self.bw_decode_macs(
            len(collected), degree, budget, ctx.st.block_rows * plan.width
        ) + self.lagrange_decode_macs(need, ctx.k, ctx.st.block_rows * plan.width)
        decode_time = self.cost_model.master_compute_time(decode_macs)

        rejected: list[int] = []
        corrected = True
        try:
            blocks, err_pos = ctx.code.decode_corrected(
                positions, values, max_errors=self.scheme.m, rng=self.rng
            )
            rejected = [collected[int(i)].worker_id for i in err_pos]
        except DecodingError:
            # Error volume beyond design capacity: decode the fastest
            # K results without correction (poisoned, but the master
            # cannot know — exactly the paper's degradation mode).
            blocks = ctx.code.decode(positions[:need], values[:need])
            corrected = False

        vec = self._strip(blocks, ctx.st.true_len)
        t_end = t_wait + decode_time
        self._iter_rejected.update(rejected)
        self._note_stragglers(rr, used=[a.worker_id for a in collected])
        record = self._mk_record(
            round_name=plan.round_name,
            rr=rr,
            last_used=collected[-1],
            t_end=t_end,
            verify_time=0.0,  # detection is inside decoding for LCC
            decode_time=decode_time,
            n_collected=len(collected),
            n_verified=len(collected) - len(rejected),
            rejected=rejected,
            used=[a.worker_id for a in collected],
        )
        self._audit_commit(
            plan, record, output=vec,
            accepted=[a.worker_id for a in collected if a.worker_id not in rejected],
            verify_ok=corrected,
            arrivals=rr.arrived(), handle=handle,
        )
        self.backend.advance_to(t_end)
        return RoundOutcome(vector=vec, record=record)
