"""Classification metrics used by the trainers and experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["sigmoid", "binary_cross_entropy", "accuracy"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function ``h(z) = 1/(1+e^-z)``."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def binary_cross_entropy(y_true: np.ndarray, p: np.ndarray, eps: float = 1e-12) -> float:
    """Mean cross-entropy (Eq. 4) with probability clipping."""
    y = np.asarray(y_true, dtype=np.float64)
    p = np.clip(np.asarray(p, dtype=np.float64), eps, 1.0 - eps)
    if y.shape != p.shape:
        raise ValueError(f"shape mismatch {y.shape} vs {p.shape}")
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))


def accuracy(y_true: np.ndarray, p: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct 0/1 predictions at the given threshold."""
    y = np.asarray(y_true)
    pred = (np.asarray(p) >= threshold).astype(y.dtype)
    if y.shape != pred.shape:
        raise ValueError(f"shape mismatch {y.shape} vs {pred.shape}")
    if y.size == 0:
        raise ValueError("empty arrays")
    return float(np.mean(pred == y))
