"""Two-round distributed logistic regression (paper Sec. IV-A).

Per iteration ``t``:

* **Round 1** — master broadcasts the quantized weights ``w_q`` and
  receives the coded products ``z~_i = X~_i · w_q``; after
  verification/decoding it holds ``z = X · w_q`` exactly in F_q,
  dequantizes, and computes the predictions ``p = h(z)`` and error
  ``e = p − y`` in the real domain.
* **Round 2** — master broadcasts the quantized error ``e_q`` and
  obtains ``g = X^T · e_q``, dequantizes and applies the update
  ``w ← w − (η/m)·g``.

Gradient clipping (by L2 norm) is applied identically to every method;
it is the standard guard that keeps a *poisoned* decode (LCC beyond
capacity, uncoded under attack) a bounded-wrong step instead of a
divergence — without it no baseline survives the constant attack at
all, with it they degrade gracefully to the plateaus Fig. 3 shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.datasets import Dataset
from repro.ml.metrics import accuracy, binary_cross_entropy, sigmoid
from repro.ml.quantize import OverflowBudget, Quantizer
from repro.ml.trainer import TrainingHistory
from repro.runtime.trace import TraceRecorder

__all__ = ["LogisticConfig", "DistributedLogisticTrainer"]


@dataclass(frozen=True)
class LogisticConfig:
    """Hyper-parameters of the quantized training loop.

    ``l_w = 5`` matches the paper's optimized weight quantization;
    ``l_e`` controls the error-vector precision in round 2.
    """

    iterations: int = 50
    learning_rate: float = 1.0
    l_w: int = 5
    l_e: int = 6
    grad_clip: float | None = 10.0
    check_overflow: bool = True


class DistributedLogisticTrainer:
    """Drives a coded-computing service through the two-round protocol
    and records accuracy-vs-simulated-time curves.

    Accepts either a :class:`repro.api.Session` (the sanctioned path)
    or a bare master (AVCC / LCC / uncoded / Static VCC), which is
    wrapped in a session transparently; all round traffic flows through
    the session's submission API — and thus its pipelined round
    scheduler — either way. The two training rounds are data-dependent
    (the error needs the decoded ``z``), so a single training loop
    runs the pipeline at depth 1 regardless of
    ``max_inflight_rounds``; widening the window pays off when the
    session *also* serves independent traffic (other jobs overlap the
    training rounds), and training results are byte-identical at any
    window size.

    ``activation`` defaults to the exact logistic function; pass a
    :class:`repro.ml.polyapprox.PolynomialSigmoid` to explore the
    paper's Sec. VII polynomial-approximation direction (evaluation
    metrics always use the true sigmoid).
    """

    def __init__(
        self,
        service,
        dataset: Dataset,
        config: LogisticConfig | None = None,
        activation=None,
    ):
        from repro.api.session import Session

        self.session = (
            service if isinstance(service, Session) else Session.from_master(service)
        )
        self.master = self.session.master
        self.dataset = dataset
        self.config = config or LogisticConfig()
        self.activation = activation or sigmoid
        self.field = self.session.field
        self.qw = Quantizer(self.field, self.config.l_w)
        self.qe = Quantizer(self.field, self.config.l_e)
        self._budget = OverflowBudget(self.field)

    # ------------------------------------------------------------------
    def _check_budgets(self, w_max: float) -> None:
        """Worst-case wrap-around analysis for both rounds (Sec. V)."""
        ds = self.dataset
        x_max = ds.max_feature()
        self._budget.check_matvec(
            x_max, w_max * self.qw.scale, ds.d, what="round-1 z = X w"
        )
        self._budget.check_matvec(
            x_max, self.qe.scale, ds.m, what="round-2 g = X^T e"
        )

    # ------------------------------------------------------------------
    def train(self, recorder: TraceRecorder | None = None) -> TrainingHistory:
        cfg = self.config
        ds = self.dataset
        m = ds.m
        w = np.zeros(ds.d, dtype=np.float64)
        history = TrainingHistory(method=self.master.name)
        t0 = self.session.now

        for it in range(cfg.iterations):
            if cfg.check_overflow:
                w_max = max(1.0, float(np.abs(w).max()))
                self._check_budgets(w_max)

            # ---- round 1: z = X w ----------------------------------
            w_q = self.qw.quantize(w)
            out1 = self.session.submit_matvec(w_q)
            z = self.qw.dequantize(out1.result())    # scale 2^{-l_w}
            p = self.activation(z)
            e = p - ds.y_train

            # ---- round 2: g = X^T e --------------------------------
            e_q = self.qe.quantize(e)
            out2 = self.session.submit_matvec(e_q, transpose=True)
            g = self.qe.dequantize(out2.result())    # scale 2^{-l_e}

            grad = g / m
            if cfg.grad_clip is not None:
                norm = float(np.linalg.norm(grad))
                if norm > cfg.grad_clip:
                    grad = grad * (cfg.grad_clip / norm)
            w = w - cfg.learning_rate * grad

            # ---- bookkeeping ---------------------------------------
            # end_iteration() advances the backend clock itself when it
            # re-ships shares, so session.now already includes the cost.
            adapt = self.session.end_iteration()
            t_iter_end = self.session.now

            p_train = sigmoid(ds.x_train @ w)
            p_test = sigmoid(ds.x_test @ w)
            history.times.append(t_iter_end - t0)
            history.train_acc.append(accuracy(ds.y_train, p_train))
            history.test_acc.append(accuracy(ds.y_test, p_test))
            history.train_loss.append(binary_cross_entropy(ds.y_train, p_train))
            history.schemes.append(adapt.scheme)
            history.reencode_times.append(adapt.reencode_time)
            history.detected_byzantine.append(adapt.detected_byzantine)
            history.observed_stragglers.append(adapt.observed_stragglers)
            audit = getattr(self.session, "audit", None)
            history.audit_heads.append(audit.head if audit is not None else None)

            if recorder is not None:
                recorder.add(
                    TraceRecorder.merge_rounds(
                        it,
                        [out1.record, out2.record],
                        reencode_time=adapt.reencode_time,
                        scheme=adapt.scheme,
                    )
                )
        self.final_weights = w
        return history
