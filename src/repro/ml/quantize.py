"""Real ⇄ finite-field quantization (paper Sec. V).

Eq. (21): ``x_r = round(2^l · x)``, embedded in F_q with negatives in
two's-complement residue form (``q + x_r`` for ``x_r < 0``). Restoring
reals subtracts ``q`` from residues above ``(q−1)/2`` and scales by
``2^{−l}``.

The critical correctness condition is **no wrap-around**: every value a
computation produces must have signed magnitude at most ``(q−1)/2``,
otherwise the signed interpretation is ambiguous and training silently
corrupts. :class:`OverflowBudget` does that worst-case accounting for
matrix–vector products, mirroring the paper's field-size selection
argument (they bound ``d(q−1)² ≤ 2^63 − 1`` for the accumulator and
pick ``l`` "taking into account the trade-off between the rounding and
the overflow error").
"""

from __future__ import annotations

import numpy as np

from repro.ff.field import PrimeField

__all__ = ["Quantizer", "OverflowBudget"]


class Quantizer:
    """Fixed-point quantizer into a prime field.

    Parameters
    ----------
    field:
        Target field.
    l_bits:
        Precision bits: reals are scaled by ``2**l_bits`` then rounded
        (the paper uses ``l = 5`` for model weights).
    """

    def __init__(self, field: PrimeField, l_bits: int):
        if l_bits < 0:
            raise ValueError("l_bits must be non-negative")
        self.field = field
        self.l_bits = int(l_bits)
        self.scale = float(2**l_bits)
        self._half = (field.q - 1) // 2

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-to-nearest fixed point, embedded as residues.

        Raises ``OverflowError`` if any scaled magnitude exceeds
        ``(q−1)/2`` — such a value cannot be represented unambiguously.
        """
        scaled = np.round(np.asarray(x, dtype=np.float64) * self.scale)
        if np.any(np.abs(scaled) > self._half):
            raise OverflowError(
                f"quantized magnitude {np.abs(scaled).max():.0f} exceeds "
                f"(q-1)/2 = {self._half}; reduce l_bits or rescale inputs"
            )
        return self.field.from_signed(scaled.astype(np.int64))

    def dequantize(self, x_q: np.ndarray, extra_bits: int = 0) -> np.ndarray:
        """Map residues back to reals.

        ``extra_bits`` accounts for scale accumulated by computation:
        a product of an ``l_a``-bit operand with an ``l_b``-bit operand
        carries ``l_a + l_b`` bits; the caller passes the total minus
        this quantizer's own bits.
        """
        signed = self.field.to_signed(x_q).astype(np.float64)
        return signed / (self.scale * float(2**extra_bits))

    def roundtrip_error_bound(self) -> float:
        """Max absolute quantization error: half an LSB."""
        return 0.5 / self.scale


class OverflowBudget:
    """Worst-case signed-magnitude accounting for field computations."""

    def __init__(self, field: PrimeField):
        self.field = field
        self.half = (field.q - 1) // 2

    def matvec_max(self, max_abs_matrix: float, max_abs_vector: float, inner: int) -> float:
        """Upper bound on ``|A·x|`` entries given entry bounds."""
        if inner < 0 or max_abs_matrix < 0 or max_abs_vector < 0:
            raise ValueError("bounds must be non-negative")
        return max_abs_matrix * max_abs_vector * inner

    def fits(self, worst_case: float) -> bool:
        return worst_case <= self.half

    def check_matvec(
        self, max_abs_matrix: float, max_abs_vector: float, inner: int, what: str = "matvec"
    ) -> None:
        """Raise ``OverflowError`` when a product could wrap."""
        worst = self.matvec_max(max_abs_matrix, max_abs_vector, inner)
        if not self.fits(worst):
            raise OverflowError(
                f"{what}: worst case |result| = {worst:.3g} exceeds (q-1)/2 "
                f"= {self.half} for q = {self.field.q}; shrink the data "
                f"scale, the quantization bits, or use a larger field"
            )

    def headroom_bits(self, worst_case: float) -> float:
        """How many extra bits of scale remain before wrap-around."""
        if worst_case <= 0:
            return float(np.log2(self.half))
        return float(np.log2(self.half / worst_case))
