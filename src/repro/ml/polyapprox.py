"""Polynomial approximation of nonlinearities (paper Sec. VII).

The paper's closing direction: "deep neural networks have non-linear
computations that are difficult to decode when such computations are
applied to encoded data. One potential option is to approximate such
non-linearities using polynomials ... This approximation comes at the
cost of accuracy loss. However, it can defend against Byzantine worker
attacks."

This module provides the building block: least-squares polynomial fits
of the logistic function on a bounded interval (the approach of
CodedPrivateML [31] and the polynomial-ReLU line of work [29]). A
polynomial activation makes the *entire* gradient computation a
polynomial of the coded data, so Lagrange coding plus the generalized
verifier covers it end to end — no real-domain detour at the master.

Fitting uses Chebyshev nodes (minimizes the Runge effect at interval
edges) with a plain normal-equations solve; degrees of practical
interest are tiny (1–7).
"""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import sigmoid

__all__ = ["fit_sigmoid_poly", "PolynomialSigmoid"]


def _chebyshev_nodes(n: int, lo: float, hi: float) -> np.ndarray:
    k = np.arange(n)
    x = np.cos((2 * k + 1) * np.pi / (2 * n))
    return 0.5 * (lo + hi) + 0.5 * (hi - lo) * x


def fit_sigmoid_poly(
    degree: int, interval: tuple[float, float] = (-8.0, 8.0), n_nodes: int = 256
) -> np.ndarray:
    """Least-squares polynomial fit of the logistic function.

    Returns ascending coefficients ``c`` with
    ``sigmoid(z) ≈ sum_i c[i] * z**i`` on ``interval``.

    Odd degrees fit best: ``sigmoid(z) - 1/2`` is odd, so even-degree
    terms contribute nothing except at the boundary.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    lo, hi = interval
    if not lo < hi:
        raise ValueError("interval must be increasing")
    if n_nodes < degree + 1:
        raise ValueError("need more nodes than coefficients")
    z = _chebyshev_nodes(n_nodes, lo, hi)
    v = np.vander(z, degree + 1, increasing=True)
    coeffs, *_ = np.linalg.lstsq(v, sigmoid(z), rcond=None)
    return coeffs


class PolynomialSigmoid:
    """A drop-in polynomial activation, clipped to (0, 1).

    Parameters
    ----------
    degree:
        Polynomial degree (3 is the CodedPrivateML choice; higher
        degrees trade recovery threshold for fidelity).
    interval:
        Fit interval — should cover the typical logit range of the
        workload; outside it the polynomial is clamped.
    """

    def __init__(self, degree: int = 3, interval: tuple[float, float] = (-8.0, 8.0)):
        self.degree = int(degree)
        self.interval = (float(interval[0]), float(interval[1]))
        self.coeffs = fit_sigmoid_poly(self.degree, self.interval)

    def __call__(self, z: np.ndarray) -> np.ndarray:
        z = np.clip(np.asarray(z, dtype=np.float64), *self.interval)
        out = np.zeros_like(z)
        for c in self.coeffs[::-1]:
            out = out * z + c
        return np.clip(out, 0.0, 1.0)

    def max_error(self, n_probe: int = 4001) -> float:
        """Sup-norm error against the true sigmoid on the fit interval."""
        z = np.linspace(*self.interval, n_probe)
        return float(np.max(np.abs(self(z) - sigmoid(z))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolynomialSigmoid(degree={self.degree}, interval={self.interval}, "
            f"max_error={self.max_error():.4f})"
        )
