"""Synthetic datasets standing in for GISETTE (documented substitution).

GISETTE (NIPS 2003 feature-selection challenge) is a 6000×5000 binary
classification problem whose feature values are bounded non-negative
integers — the paper relies on exactly those two properties (Sec. V:
"the GISETTE dataset values are all non-negative integers and fit
within the selected finite field. Hence, no quantization is necessary"
for the data). :func:`make_gisette_like` generates data with the same
interface properties:

* integer features in ``[0, value_max]``, sparse (most entries zero);
* binary labels from a sparse ground-truth linear separator with label
  noise, so logistic regression converges into the mid-90s% accuracy
  range over a few dozen iterations — the regime of Fig. 3;
* shape defaults scaled down for CI, full ``(6000, 5000)`` available.

The value/density defaults keep the worst-case field magnitudes well
inside ``(q−1)/2`` (checked by tests via
:class:`~repro.ml.quantize.OverflowBudget`), which GISETTE+field-size
tuning achieved in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "make_gisette_like", "make_linreg_dataset"]


@dataclass(frozen=True)
class Dataset:
    """A train/test split with integer features.

    ``x_*`` are ``int64`` (field-embeddable as-is); ``y_*`` are
    ``float64`` 0/1 labels (logistic) or reals (regression targets).
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def m(self) -> int:
        return self.x_train.shape[0]

    @property
    def d(self) -> int:
        return self.x_train.shape[1]

    def max_feature(self) -> int:
        return int(max(self.x_train.max(initial=0), self.x_test.max(initial=0)))


def make_gisette_like(
    m: int = 1200,
    d: int = 600,
    *,
    test_fraction: float = 0.25,
    density: float = 0.15,
    value_max: int = 15,
    informative_fraction: float = 0.2,
    label_noise: float = 0.02,
    class_lift: float = 0.5,
    rng: np.random.Generator | None = None,
) -> Dataset:
    """Sparse bounded-integer binary classification data.

    Parameters
    ----------
    m, d:
        Total samples (train+test) and features. The paper's full shape
        is ``(6000, 5000)``; the default is a CI-friendly reduction
        with identical structure.
    density:
        Fraction of nonzero feature entries.
    value_max:
        Maximum feature value (GISETTE uses 999 with ~13% density; we
        default lower to keep field headroom at small ``d``).
    informative_fraction:
        Fraction of features carrying label signal.
    label_noise:
        Probability of flipping a label — bounds achievable accuracy
        below 100%, like the paper's ~95–96% plateaus.
    class_lift:
        Relative shift of the informative features' firing probability
        between classes (GISETTE-style class-conditional pixels);
        larger = more separable.
    """
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    if value_max < 1:
        raise ValueError("value_max must be >= 1")
    if not 0 <= class_lift <= 1:
        raise ValueError("class_lift must be in [0, 1]")
    rng = rng or np.random.default_rng(0)

    # Labels first, then class-conditional features (GISETTE-style: the
    # informative "pixels" fire more often in one class than the other).
    y = (rng.random(m) < 0.5).astype(np.float64)
    n_info = max(1, int(d * informative_fraction))
    info_idx = rng.choice(d, size=n_info, replace=False)
    info_sign = rng.choice([-1.0, 1.0], size=n_info)

    prob = np.full((m, d), density)
    class_signal = 2.0 * y - 1.0  # -1 / +1
    for j, s in zip(info_idx, info_sign):
        prob[:, j] = density * (1.0 + s * class_lift * class_signal)
    prob = np.clip(prob, 0.005, 0.95)

    x = np.zeros((m, d), dtype=np.int64)
    mask = rng.random((m, d)) < prob
    x[mask] = rng.integers(1, value_max + 1, size=int(mask.sum()))

    # Per-sample multiplicative intensity jitter (label-independent),
    # like scan brightness / pen pressure in the original handwriting
    # features. It decorrelates the naive class-mean direction from the
    # optimal separator, so gradient descent needs a realistic number
    # of iterations (~10-30) instead of one lucky first step.
    intensity = np.exp(rng.normal(0.0, 0.25, size=m))
    x = np.clip(np.round(x * intensity[:, None]), 0, value_max).astype(np.int64)

    flip = rng.random(m) < label_noise
    y[flip] = 1.0 - y[flip]

    n_test = int(m * test_fraction)
    perm = rng.permutation(m)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return Dataset(
        name=f"gisette-like(m={m},d={d})",
        x_train=x[train_idx],
        y_train=y[train_idx],
        x_test=x[test_idx],
        y_test=y[test_idx],
    )


def make_linreg_dataset(
    m: int = 800,
    d: int = 100,
    *,
    test_fraction: float = 0.25,
    value_max: int = 7,
    density: float = 0.3,
    noise_std: float = 0.5,
    rng: np.random.Generator | None = None,
) -> Dataset:
    """Integer-feature linear regression data, ``y = X w* + noise``."""
    rng = rng or np.random.default_rng(0)
    x = np.zeros((m, d), dtype=np.int64)
    mask = rng.random((m, d)) < density
    x[mask] = rng.integers(1, value_max + 1, size=int(mask.sum()))
    w_true = rng.normal(0.0, 1.0, size=d) / np.sqrt(d * density * value_max)
    y = x @ w_true + rng.normal(0.0, noise_std, size=m)

    n_test = int(m * test_fraction)
    perm = rng.permutation(m)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return Dataset(
        name=f"linreg(m={m},d={d})",
        x_train=x[train_idx],
        y_train=y[train_idx],
        x_test=x[test_idx],
        y_test=y[test_idx],
    )
