"""Quantized machine-learning applications over the coded masters.

The paper's evaluation workload is binary logistic regression trained
with the two-round protocol of Sec. IV-A:

* round 1: ``z = X·w`` (coded, verified), then master-side
  ``p = h(z)``, ``e = p − y``;
* round 2: ``g = X^T·e`` (coded, verified), then master-side
  ``w ← w − (η/m)·g``.

Everything the workers see is in F_q; reals cross into the field via
:class:`Quantizer` (Eq. 21, two's-complement embedding) and back via
the signed representative. :class:`OverflowBudget` validates the
paper's Sec. V constraint that worst-case results stay below
``(q−1)/2`` so the signed interpretation is unambiguous.
"""

from repro.ml.datasets import Dataset, make_gisette_like, make_linreg_dataset
from repro.ml.linreg import DistributedLinearRegressionTrainer, LinRegConfig
from repro.ml.logistic import DistributedLogisticTrainer, LogisticConfig
from repro.ml.metrics import accuracy, binary_cross_entropy, sigmoid
from repro.ml.polyapprox import PolynomialSigmoid, fit_sigmoid_poly
from repro.ml.quantize import OverflowBudget, Quantizer
from repro.ml.trainer import TrainingHistory

__all__ = [
    "Dataset",
    "DistributedLinearRegressionTrainer",
    "DistributedLogisticTrainer",
    "LinRegConfig",
    "LogisticConfig",
    "OverflowBudget",
    "PolynomialSigmoid",
    "Quantizer",
    "TrainingHistory",
    "accuracy",
    "binary_cross_entropy",
    "fit_sigmoid_poly",
    "make_gisette_like",
    "make_linreg_dataset",
    "sigmoid",
]
