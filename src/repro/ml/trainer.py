"""Shared training-history record for the distributed trainers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrainingHistory"]


@dataclass
class TrainingHistory:
    """Everything an experiment needs about one training run.

    All times are simulated seconds **relative to training start**
    (setup/preprocessing is excluded, matching the paper's amortization
    of one-time costs).
    """

    method: str
    times: list[float] = field(default_factory=list)        # end of each iteration
    train_acc: list[float] = field(default_factory=list)
    test_acc: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    schemes: list[tuple[int, int]] = field(default_factory=list)
    reencode_times: list[float] = field(default_factory=list)
    detected_byzantine: list[tuple[int, ...]] = field(default_factory=list)
    observed_stragglers: list[tuple[int, ...]] = field(default_factory=list)
    #: audit-chain head hash after each iteration (``None`` entries
    #: when the session is unaudited) — a training run whose heads all
    #: chain is provable as one unbroken sequence of verified rounds
    audit_heads: list[str | None] = field(default_factory=list)

    def iterations(self) -> int:
        return len(self.times)

    @property
    def final_test_acc(self) -> float:
        if not self.test_acc:
            raise ValueError("empty history")
        return self.test_acc[-1]

    @property
    def total_time(self) -> float:
        return self.times[-1] if self.times else 0.0

    def time_to_accuracy(self, target: float) -> float:
        """First simulated time at which test accuracy reaches
        ``target``; ``inf`` if never — the Table I speedup metric."""
        for t, acc in zip(self.times, self.test_acc):
            if acc >= target:
                return t
        return math.inf

    def best_test_acc(self) -> float:
        return max(self.test_acc) if self.test_acc else 0.0

    def plateau_accuracy(self, tail: int = 5) -> float:
        """Mean test accuracy over the last ``tail`` iterations — a
        robust 'converged accuracy' (single-iteration spikes ignored)."""
        if not self.test_acc:
            raise ValueError("empty history")
        return float(np.mean(self.test_acc[-tail:]))

    def summary(self) -> str:
        return (
            f"{self.method}: {self.iterations()} iters, "
            f"{self.total_time:.2f}s simulated, "
            f"final test acc {self.final_test_acc:.3f}"
        )
