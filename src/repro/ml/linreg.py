"""Distributed linear regression over the same two-round substrate.

Gradient descent on ``(1/2m)·||X w − y||²``: per iteration the master
computes ``z = X·w`` (round 1), forms the residual ``e = z − y`` in the
real domain, and computes ``g = X^T·e`` (round 2). Demonstrates that
the coded masters are a generic linear-computation service, not a
logistic-regression one-off (the paper: "AVCC is particularly suitable
for ... linear regression and logistic regression").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.datasets import Dataset
from repro.ml.quantize import OverflowBudget, Quantizer
from repro.ml.trainer import TrainingHistory
from repro.runtime.trace import TraceRecorder

__all__ = ["LinRegConfig", "DistributedLinearRegressionTrainer"]


@dataclass(frozen=True)
class LinRegConfig:
    iterations: int = 30
    learning_rate: float = 0.01
    l_w: int = 8
    l_e: int = 6
    grad_clip: float | None = 100.0
    #: residuals are clipped to this magnitude before quantization so
    #: the round-2 overflow budget holds for arbitrary early iterates
    residual_clip: float = 16.0


class DistributedLinearRegressionTrainer:
    """Same drive loop as logistic regression, squared loss instead.

    Accepts a :class:`repro.api.Session` or a bare master (wrapped in a
    session transparently). Rounds flow through the session's
    pipelined scheduler; the two rounds per iteration are
    data-dependent, so training itself is window-insensitive (see
    :class:`~repro.ml.logistic.DistributedLogisticTrainer`)."""

    def __init__(self, service, dataset: Dataset, config: LinRegConfig | None = None):
        from repro.api.session import Session

        self.session = (
            service if isinstance(service, Session) else Session.from_master(service)
        )
        self.master = self.session.master
        self.dataset = dataset
        self.config = config or LinRegConfig()
        self.field = self.session.field
        self.qw = Quantizer(self.field, self.config.l_w)
        self.qe = Quantizer(self.field, self.config.l_e)
        self._budget = OverflowBudget(self.field)

    def _mse(self, x, y, w) -> float:
        r = x @ w - y
        return float(np.mean(r * r))

    def train(self, recorder: TraceRecorder | None = None) -> TrainingHistory:
        cfg = self.config
        ds = self.dataset
        m = ds.m
        w = np.zeros(ds.d, dtype=np.float64)
        history = TrainingHistory(method=self.master.name)
        t0 = self.session.now

        for it in range(cfg.iterations):
            x_max = ds.max_feature()
            self._budget.check_matvec(
                x_max, max(1.0, float(np.abs(w).max())) * self.qw.scale, ds.d,
                what="round-1 z = X w",
            )
            self._budget.check_matvec(
                x_max, cfg.residual_clip * self.qe.scale, ds.m,
                what="round-2 g = X^T e",
            )

            w_q = self.qw.quantize(w)
            out1 = self.session.submit_matvec(w_q)
            z = self.qw.dequantize(out1.result())
            e = np.clip(z - ds.y_train, -cfg.residual_clip, cfg.residual_clip)

            e_q = self.qe.quantize(e)
            out2 = self.session.submit_matvec(e_q, transpose=True)
            g = self.qe.dequantize(out2.result())

            grad = g / m
            if cfg.grad_clip is not None:
                norm = float(np.linalg.norm(grad))
                if norm > cfg.grad_clip:
                    grad = grad * (cfg.grad_clip / norm)
            w = w - cfg.learning_rate * grad

            adapt = self.session.end_iteration()
            t_iter_end = self.session.now

            history.times.append(t_iter_end - t0)
            # for regression, "accuracy" slots hold negative MSE so the
            # shared time_to_accuracy machinery still works monotonely
            train_mse = self._mse(ds.x_train, ds.y_train, w)
            test_mse = self._mse(ds.x_test, ds.y_test, w)
            history.train_acc.append(-train_mse)
            history.test_acc.append(-test_mse)
            history.train_loss.append(train_mse)
            history.schemes.append(adapt.scheme)
            history.reencode_times.append(adapt.reencode_time)
            history.detected_byzantine.append(adapt.detected_byzantine)
            history.observed_stragglers.append(adapt.observed_stragglers)
            audit = getattr(self.session, "audit", None)
            history.audit_heads.append(audit.head if audit is not None else None)

            if recorder is not None:
                recorder.add(
                    TraceRecorder.merge_rounds(
                        it,
                        [out1.record, out2.record],
                        reencode_time=adapt.reencode_time,
                        scheme=adapt.scheme,
                    )
                )
        self.final_weights = w
        return history
