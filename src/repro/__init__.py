"""AVCC — Adaptive Verifiable Coded Computing (IPDPS 2022 reproduction).

Top-level convenience re-exports. The subpackages are:

``repro.ff``           finite-field substrate (field, codecs' math)
``repro.coding``       MDS / Lagrange coded-computing codecs
``repro.verify``       Freivalds-style verifiable computing
``repro.runtime``      simulated (and threaded) master/worker cluster
``repro.core``         the AVCC master, baselines, dynamic coding
``repro.ml``           quantized distributed training applications
``repro.experiments``  regeneration of the paper's tables and figures
``repro.api``          the Session front door (config, registries, batching)
``repro.serve``        the multi-tenant serving gateway (traffic, deadlines)
"""

from repro.coding import LagrangeCode, MDSCode, SchemeParams
from repro.core import (
    AVCCMaster,
    CodedMatmulAVCCMaster,
    AdaptivePolicy,
    GramianAVCCMaster,
    InsufficientResultsError,
    LCCMaster,
    StaticVCCMaster,
    UncodedMaster,
)
from repro.ff import DEFAULT_PRIME, PrimeField
from repro.ml import (
    DistributedLinearRegressionTrainer,
    DistributedLogisticTrainer,
    LinRegConfig,
    LogisticConfig,
    Quantizer,
    make_gisette_like,
    make_linreg_dataset,
)
from repro.runtime import (
    ConstantAttack,
    RandomAttack,
    CostModel,
    Honest,
    IntermittentAttack,
    ReversedValueAttack,
    SilentFailure,
    SimCluster,
    SimWorker,
    TraceRecorder,
    make_profiles,
)
from repro.verify import FreivaldsVerifier, MatrixPolynomialVerifier, TwoStageVerifier

__version__ = "1.0.0"

__all__ = [
    "AVCCMaster",
    "AdaptivePolicy",
    "CodedMatmulAVCCMaster",
    "ConstantAttack",
    "CostModel",
    "DEFAULT_PRIME",
    "DistributedLinearRegressionTrainer",
    "DistributedLogisticTrainer",
    "FreivaldsVerifier",
    "GramianAVCCMaster",
    "Honest",
    "InsufficientResultsError",
    "IntermittentAttack",
    "LCCMaster",
    "LagrangeCode",
    "LinRegConfig",
    "LogisticConfig",
    "MDSCode",
    "MatrixPolynomialVerifier",
    "PrimeField",
    "Quantizer",
    "RandomAttack",
    "ReversedValueAttack",
    "SchemeParams",
    "SilentFailure",
    "SimCluster",
    "SimWorker",
    "StaticVCCMaster",
    "TraceRecorder",
    "TwoStageVerifier",
    "UncodedMaster",
    "make_gisette_like",
    "make_linreg_dataset",
    "make_profiles",
    "__version__",
]
