"""Freivalds verification of matrix–matrix products.

Classic Freivalds (1977): to check a claimed ``C = A @ B`` with
``A ∈ F^{a×n}``, ``B ∈ F^{n×b}``, pick random ``r ∈ F^{a}`` and accept
iff ``r·C == (r·A)·B``. With the probe ``s = r·A`` precomputed as a
private key, one check costs ``O(a·b + n·b)`` versus the worker's
``O(a·n·b)`` — the multiplicative ``a``-factor saving that makes
per-worker verification of coded matmul affordable.

Soundness: for ``C ≠ A@B``, each probe passes with probability at most
``1/q`` (a nonzero row of ``C − A@B`` must be orthogonal to ``r``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.linalg import ff_matmul

__all__ = ["MatmulKey", "MatmulVerifier"]


@dataclass(frozen=True)
class MatmulKey:
    """Private key for one worker's coded left-factor ``A~``.

    Attributes
    ----------
    r:
        ``(probes, a)`` random probe matrix.
    s:
        ``(probes, n)`` precomputed ``r @ A~``.
    """

    r: np.ndarray
    s: np.ndarray

    @property
    def probes(self) -> int:
        return self.r.shape[0]

    @property
    def rows(self) -> int:
        """a: rows of the claimed product."""
        return self.r.shape[1]

    @property
    def inner(self) -> int:
        """n: the contracted dimension."""
        return self.s.shape[1]


class MatmulVerifier:
    """Key generator + checker for ``C~ = A~ @ B~`` worker claims.

    The master keeps each worker's encoded right-factor ``B~`` (it
    produced it during encoding), so only the left-factor probe is a
    precomputed key.
    """

    def __init__(self, field: PrimeField, probes: int = 1):
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.field = field
        self.probes = probes

    def keygen_single(self, a_share: np.ndarray, rng: np.random.Generator) -> MatmulKey:
        a_share = self.field.asarray(a_share)
        if a_share.ndim != 2:
            raise ValueError(f"A-share must be a matrix, got {a_share.shape}")
        r = self.field.random((self.probes, a_share.shape[0]), rng)
        return MatmulKey(r=r, s=ff_matmul(self.field, r, a_share))

    def keygen(self, a_shares: np.ndarray, rng: np.random.Generator) -> list[MatmulKey]:
        a_shares = self.field.asarray(a_shares)
        if a_shares.ndim != 3:
            raise ValueError(f"expected (n, a, inner) shares, got {a_shares.shape}")
        return [self.keygen_single(s, rng) for s in a_shares]

    def check(self, key: MatmulKey, b_share: np.ndarray, claimed: np.ndarray) -> bool:
        """Accept iff ``r @ claimed == s @ b_share`` for all probes."""
        field = self.field
        b_share = field.asarray(b_share)
        claimed = field.asarray(claimed)
        if claimed.ndim != 2 or claimed.shape[0] != key.rows:
            raise ValueError(
                f"claimed product has shape {claimed.shape}, expected ({key.rows}, b)"
            )
        if b_share.ndim != 2 or b_share.shape[0] != key.inner:
            raise ValueError(
                f"B-share has shape {b_share.shape}, expected ({key.inner}, b)"
            )
        if b_share.shape[1] != claimed.shape[1]:
            raise ValueError("B-share and claimed product disagree on columns")
        lhs = ff_matmul(field, key.r, claimed)
        rhs = ff_matmul(field, key.s, b_share)
        return bool(np.array_equal(lhs, rhs))

    def check_cost_ops(self, key: MatmulKey, out_cols: int) -> int:
        """MACs per check: ``p·(a·b + n·b)``."""
        return self.probes * (key.rows * out_cols + key.inner * out_cols)

    @staticmethod
    def worker_cost_ops(a_rows: int, inner: int, out_cols: int) -> int:
        """What the worker spent: ``a·n·b``."""
        return a_rows * inner * out_cols
