"""Generalized AVCC verification: matrix-polynomial results.

Paper Sec. IV-B: "in principle, AVCC can be applied to any polynomial
f". For a square coded matrix ``A`` and a polynomial
``f(x) = c_0 + c_1 x + ... + c_D x^D``, a worker returns the matrix
``Y = f(A) = c_0 I + c_1 A + ... + c_D A^D``. Recomputing ``f(A)``
costs ``O(D·b³)``; the Freivalds-style probe needs only ``O(D·b²)``:

    accept  iff  Y·r == c_0 r + c_1 A r + c_2 A(A r) + ...

for a uniformly random vector ``r`` — the right-hand side is evaluated
with ``D`` matvecs by Horner's rule. Soundness is again ``q^{-p}``
per the standard rank-1 argument applied to ``Y − f(A)``.

The master keeps the coded share ``A`` (it produced it during
encoding), so no precomputed key is needed; this verifier is stateless.
"""

from __future__ import annotations

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.linalg import ff_matmul, ff_matvec

__all__ = ["MatrixPolynomialVerifier"]


class MatrixPolynomialVerifier:
    """Probabilistic verifier for ``Y = f(A)`` matrix-polynomial claims."""

    def __init__(self, field: PrimeField, probes: int = 1):
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.field = field
        self.probes = probes

    def reference_eval(self, share: np.ndarray, coeffs) -> np.ndarray:
        """Honest worker computation ``f(A)`` by Horner (``O(D·b³)``).

        Provided for tests and for simulating honest workers.
        """
        field = self.field
        a = field.asarray(share)
        c = field.asarray(np.atleast_1d(coeffs))
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("share must be square for matrix polynomials")
        b = a.shape[0]
        out = field.zeros((b, b))
        ident = np.eye(b, dtype=np.int64)
        for ck in c[::-1]:
            out = ff_matmul(field, out, a)
            out = (out + int(ck) * ident) % field.q
        return out

    def check(
        self,
        share: np.ndarray,
        coeffs,
        claimed: np.ndarray,
        rng: np.random.Generator,
    ) -> bool:
        """Accept iff ``claimed @ r == f(A) @ r`` for random probes ``r``.

        Cost: ``(D + 1)·b²`` MACs per probe versus ``D·b³`` to recompute.
        """
        field = self.field
        a = field.asarray(share)
        y = field.asarray(claimed)
        c = field.asarray(np.atleast_1d(coeffs))
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("share must be square for matrix polynomials")
        if y.shape != a.shape:
            raise ValueError(f"claimed shape {y.shape} != share shape {a.shape}")
        b = a.shape[0]
        for _ in range(self.probes):
            r = field.random(b, rng)
            # rhs = f(A) r via Horner: acc = c_D r; acc = A acc + c_k r
            acc = int(c[-1]) * r % field.q
            for ck in c[-2::-1]:
                acc = (ff_matvec(field, a, acc) + int(ck) * r) % field.q
            lhs = ff_matvec(field, y, r)
            if not np.array_equal(lhs, acc):
                return False
        return True

    def check_cost_ops(self, b: int, degree: int) -> int:
        """MACs per probe: one ``b²`` matvec for the claim plus
        ``degree`` matvecs for the reference side."""
        return self.probes * (degree + 1) * b * b

    def recompute_cost_ops(self, b: int, degree: int) -> int:
        """What re-doing the worker's job would cost: ``degree·b³``."""
        return max(degree, 1) * b**3
