"""Two-stage verification for degree-2 gramian computations.

Linear-regression-style workloads ask each worker for
``g = A^T (A w)`` — a degree-2 polynomial of the coded data ``A``.
Verifying ``g`` directly against ``w`` would require a key for
``A^T A``, whose computation is exactly the work being offloaded. The
standard trick (and what the paper's two-round logistic protocol does
implicitly across rounds) is to have the worker also return the
intermediate ``z = A·w`` and verify the two linear stages separately:

* stage 1: ``r1·z == (r1·A)·w``
* stage 2: ``r2·g == (r2·A^T)·z``

If ``z`` is wrong, stage 1 rejects w.h.p.; if ``z`` is right but ``g``
wrong, stage 2 rejects w.h.p. — union-bound soundness ``2/q`` per probe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ff.field import PrimeField
from repro.verify.freivalds import FreivaldsVerifier, MatvecKey

__all__ = ["TwoStageKey", "TwoStageVerifier"]


@dataclass(frozen=True)
class TwoStageKey:
    """Keys for both stages of an ``A^T (A w)`` computation."""

    forward: MatvecKey   # verifies z = A w
    backward: MatvecKey  # verifies g = A^T z


class TwoStageVerifier:
    """Key generator + checker for gramian (degree-2) worker tasks."""

    def __init__(self, field: PrimeField, probes: int = 1):
        self.field = field
        self.probes = probes
        self._mv = FreivaldsVerifier(field, probes)

    def keygen_single(self, share: np.ndarray, rng: np.random.Generator) -> TwoStageKey:
        share = self.field.asarray(share)
        if share.ndim != 2:
            raise ValueError(f"share must be a matrix, got {share.shape}")
        return TwoStageKey(
            forward=self._mv.keygen_single(share, rng),
            backward=self._mv.keygen_single(share.T, rng),
        )

    def keygen(self, shares: np.ndarray, rng: np.random.Generator) -> list[TwoStageKey]:
        shares = self.field.asarray(shares)
        if shares.ndim != 3:
            raise ValueError(f"expected (n, b, d) shares, got {shares.shape}")
        return [self.keygen_single(s, rng) for s in shares]

    def check(
        self,
        key: TwoStageKey,
        operand: np.ndarray,
        claimed_intermediate: np.ndarray,
        claimed_result: np.ndarray,
    ) -> bool:
        """Accept iff both stages verify.

        ``claimed_intermediate`` is the worker's ``z = A·w``;
        ``claimed_result`` its ``g = A^T·z``.
        """
        return self._mv.check(key.forward, operand, claimed_intermediate) and self._mv.check(
            key.backward, claimed_intermediate, claimed_result
        )

    def check_cost_ops(self, key: TwoStageKey, width: int = 1) -> int:
        return self._mv.check_cost_ops(key.forward, width) + self._mv.check_cost_ops(
            key.backward, width
        )
