"""Information-theoretic verifiable computing (Freivalds-style).

The orthogonal mechanism AVCC pairs with coded computing: the master
verifies *each worker's result independently*, in ``O(m + d)`` work per
check instead of the ``O(md/K)`` the worker spent (paper Sec. II-B and
Sec. IV step 3). A wrong result passes a single check with probability
at most ``1/q``; ``t`` independent probes push that to ``q^-t``.

Three verifiers:

* :class:`FreivaldsVerifier` — matrix–vector products (the paper's
  logistic-regression rounds, Eqs. 6–9).
* :class:`TwoStageVerifier` — degree-2 gramian computations
  ``A^T (A w)`` where the worker ships the intermediate product
  (one-round linear regression).
* :class:`MatrixPolynomialVerifier` — generalized AVCC: verify
  ``Y = f(A)`` for a matrix polynomial ``f`` with ``deg f`` matvecs
  (``O(deg·b²)`` instead of the worker's ``O(deg·b³)``).
"""

from repro.verify.freivalds import FreivaldsVerifier, MatvecKey, soundness_error
from repro.verify.matmul import MatmulKey, MatmulVerifier
from repro.verify.polyverify import MatrixPolynomialVerifier
from repro.verify.twostage import TwoStageKey, TwoStageVerifier

__all__ = [
    "FreivaldsVerifier",
    "MatrixPolynomialVerifier",
    "MatvecKey",
    "MatmulKey",
    "MatmulVerifier",
    "TwoStageKey",
    "TwoStageVerifier",
    "soundness_error",
]
