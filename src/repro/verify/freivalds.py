"""Freivalds verification of matrix–vector products (paper Eqs. 6–9).

Protocol for a coded matrix ``A ∈ F^{b×d}`` held by one worker:

* **Key generation** (once, offline): draw ``r ∈ F^{p×b}`` uniformly,
  precompute ``s = r·A ∈ F^{p×d}``. The pair ``(r, s)`` is the private
  verification key; ``p`` is the probe count (``p = 1`` in the paper).
* **Integrity check** (per result): the worker claims ``z = A·w``.
  Accept iff ``r·z == s·w`` (all probes). Cost ``O(p(b + d))``.

Completeness is exact: a correct ``z`` always passes. Soundness: a
wrong ``z`` passes with probability at most ``q^{-p}`` — for any fixed
``δ = z − A·w ≠ 0``, ``r·δ`` is uniform over F_q per probe (Eq. 10–11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.linalg import ff_matmul

__all__ = ["MatvecKey", "FreivaldsVerifier", "soundness_error"]


def soundness_error(q: int, probes: int = 1) -> float:
    """Upper bound on the probability a forged result passes: ``q**-p``."""
    if probes < 1:
        raise ValueError("need at least one probe")
    return float(q) ** (-probes)


@dataclass(frozen=True)
class MatvecKey:
    """Private verification key for one worker's coded matrix.

    Attributes
    ----------
    r:
        ``(p, b)`` random probe matrix (``r^(1)_i`` / ``r^(2)_i`` in the
        paper, generalized to ``p`` probes).
    s:
        ``(p, d)`` precomputed ``r @ A`` (``s^(1)_i`` / ``s^(2)_i``).
    """

    r: np.ndarray
    s: np.ndarray

    @property
    def probes(self) -> int:
        return self.r.shape[0]

    @property
    def rows(self) -> int:
        """b: length of the results this key verifies."""
        return self.r.shape[1]

    @property
    def cols(self) -> int:
        """d: length of the operands this key verifies against."""
        return self.s.shape[1]


class FreivaldsVerifier:
    """Key generator + integrity checker for matrix–vector workloads.

    Parameters
    ----------
    field:
        The computation field.
    probes:
        Independent probes per check. The paper uses 1 (soundness
        ``1/q ≈ 3e-8`` for the 25-bit field); small-field tests use more.
    """

    def __init__(self, field: PrimeField, probes: int = 1):
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.field = field
        self.probes = probes

    # ------------------------------------------------------------------
    def keygen_single(self, share: np.ndarray, rng: np.random.Generator) -> MatvecKey:
        """Key for one coded matrix ``A`` (``(b, d)``)."""
        share = self.field.asarray(share)
        if share.ndim != 2:
            raise ValueError(f"share must be a matrix, got shape {share.shape}")
        r = self.field.random((self.probes, share.shape[0]), rng)
        s = ff_matmul(self.field, r, share)
        return MatvecKey(r=r, s=s)

    def keygen(self, shares: np.ndarray, rng: np.random.Generator) -> list[MatvecKey]:
        """Keys for a stack of coded matrices ``(n, b, d)`` — one per
        worker (the paper's per-worker ``V_i``)."""
        shares = self.field.asarray(shares)
        if shares.ndim != 3:
            raise ValueError(f"expected (n, b, d) shares, got {shares.shape}")
        return [self.keygen_single(s, rng) for s in shares]

    # ------------------------------------------------------------------
    def check(self, key: MatvecKey, operand: np.ndarray, claimed: np.ndarray) -> bool:
        """Integrity check (Eq. 8/9): accept iff ``r·claimed == s·operand``.

        ``operand`` is the broadcast vector (``w`` or ``e``), ``claimed``
        the worker's returned product. Batched rounds pass a 2-D
        ``(d, B)`` operand and the worker's stacked ``(b, B)`` products;
        all ``B`` columns are checked in one probe application (the
        soundness bound ``q^{-p}`` holds per column, hence for the
        conjunction too), and the check accepts only when every column
        verifies — a worker that forges any job in the batch is
        rejected whole.
        """
        field = self.field
        operand = field.asarray(operand)
        claimed = field.asarray(claimed)
        if operand.ndim == 1:
            if claimed.shape != (key.rows,):
                raise ValueError(
                    f"claimed result has shape {claimed.shape}, key expects ({key.rows},)"
                )
            if operand.shape != (key.cols,):
                raise ValueError(
                    f"operand has shape {operand.shape}, key expects ({key.cols},)"
                )
            operand = operand[:, None]
            claimed = claimed[:, None]
        else:
            if operand.ndim != 2 or operand.shape[0] != key.cols:
                raise ValueError(
                    f"operand has shape {operand.shape}, key expects ({key.cols}, B)"
                )
            if claimed.shape != (key.rows, operand.shape[1]):
                raise ValueError(
                    f"claimed result has shape {claimed.shape}, key expects "
                    f"({key.rows}, {operand.shape[1]})"
                )
        lhs = ff_matmul(field, key.r, claimed)
        rhs = ff_matmul(field, key.s, operand)
        return bool(np.array_equal(lhs, rhs))

    # ------------------------------------------------------------------
    # cost accounting (drives the simulator's verification timing)
    # ------------------------------------------------------------------
    def check_cost_ops(self, key: MatvecKey, width: int = 1) -> int:
        """Multiply-accumulate count of one check: ``p(b + d)`` — the
        paper's ``O(m + d)`` with ``b = m/K`` (Sec. IV step 3).
        A batched check over ``width`` columns scales linearly."""
        return self.probes * (key.rows + key.cols) * width

    def keygen_cost_ops(self, n_rows: int, n_cols: int) -> int:
        """One-time key cost per worker: ``p·b·d`` MACs."""
        return self.probes * n_rows * n_cols
